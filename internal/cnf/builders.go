package cnf

import "repro/internal/lits"

// The builder helpers below emit the standard Tseitin gate encodings used
// by the circuit unroller. Each AddX method asserts "out <-> gate(inputs)"
// as CNF clauses. They live here (rather than in the unroller) so they can
// be unit-tested against truth tables in isolation and reused by other
// encoders.

// AddAnd2 encodes out <-> (a & b): three clauses.
func (f *Formula) AddAnd2(out, a, b lits.Lit) {
	f.AddClause(Clause{out.Neg(), a})
	f.AddClause(Clause{out.Neg(), b})
	f.AddClause(Clause{out, a.Neg(), b.Neg()})
}

// AddOr2 encodes out <-> (a | b): three clauses.
func (f *Formula) AddOr2(out, a, b lits.Lit) {
	f.AddClause(Clause{out, a.Neg()})
	f.AddClause(Clause{out, b.Neg()})
	f.AddClause(Clause{out.Neg(), a, b})
}

// AddXor2 encodes out <-> (a ^ b): four clauses.
func (f *Formula) AddXor2(out, a, b lits.Lit) {
	f.AddClause(Clause{out.Neg(), a, b})
	f.AddClause(Clause{out.Neg(), a.Neg(), b.Neg()})
	f.AddClause(Clause{out, a.Neg(), b})
	f.AddClause(Clause{out, a, b.Neg()})
}

// AddEq encodes out <-> a: two clauses (a buffer, or an inverter when one
// side is negated).
func (f *Formula) AddEq(out, a lits.Lit) {
	f.AddClause(Clause{out.Neg(), a})
	f.AddClause(Clause{out, a.Neg()})
}

// AddMux encodes out <-> (sel ? a : b).
func (f *Formula) AddMux(out, sel, a, b lits.Lit) {
	f.AddClause(Clause{out.Neg(), sel.Neg(), a})
	f.AddClause(Clause{out, sel.Neg(), a.Neg()})
	f.AddClause(Clause{out.Neg(), sel, b})
	f.AddClause(Clause{out, sel, b.Neg()})
}

// AddAndN encodes out <-> AND(ins...). With no inputs the AND is the
// constant true, so a unit clause on out is emitted.
func (f *Formula) AddAndN(out lits.Lit, ins ...lits.Lit) {
	if len(ins) == 0 {
		f.AddUnit(out)
		return
	}
	long := make(Clause, 0, len(ins)+1)
	long = append(long, out)
	for _, in := range ins {
		f.AddClause(Clause{out.Neg(), in})
		long = append(long, in.Neg())
	}
	f.AddClause(long)
}

// AddOrN encodes out <-> OR(ins...). With no inputs the OR is the constant
// false.
func (f *Formula) AddOrN(out lits.Lit, ins ...lits.Lit) {
	if len(ins) == 0 {
		f.AddUnit(out.Neg())
		return
	}
	long := make(Clause, 0, len(ins)+1)
	long = append(long, out.Neg())
	for _, in := range ins {
		f.AddClause(Clause{out, in.Neg()})
		long = append(long, in)
	}
	f.AddClause(long)
}

// AtMostOnePairwise adds the quadratic pairwise encoding of "at most one of
// ls is true". Fine for the small cardinalities used in this repo.
func (f *Formula) AtMostOnePairwise(ls ...lits.Lit) {
	for i := 0; i < len(ls); i++ {
		for j := i + 1; j < len(ls); j++ {
			f.AddClause(Clause{ls[i].Neg(), ls[j].Neg()})
		}
	}
}
