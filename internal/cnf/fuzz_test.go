package cnf

import (
	"sort"
	"testing"

	"repro/internal/lits"
)

// decodeClause turns fuzz bytes into a clause of DIMACS literals over a
// small variable range, so duplicate and complementary pairs actually
// occur instead of being measure-zero.
func decodeClause(data []byte) Clause {
	const maxLen = 64
	if len(data) > maxLen {
		data = data[:maxLen]
	}
	var ds []int
	for _, b := range data {
		// Map a byte to a literal over vars 1..16, both polarities.
		d := int(b%32) - 16
		if d >= 0 {
			d++ // skip 0, the DIMACS terminator
		}
		ds = append(ds, d)
	}
	return NewClause(ds...)
}

// FuzzClauseCanon checks the clause canonicalization contract that the
// solver's dedup (clauseKey) and the exchange bus both build on:
// Normalize must sort strictly, preserve the literal set, detect
// tautologies exactly, be idempotent, and never change the clause's
// truth function.
func FuzzClauseCanon(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{3, 200, 7, 3})
	f.Add([]byte{0, 16, 17, 16, 255, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := decodeClause(data)
		work := orig.Copy()
		norm, taut := work.Normalize()

		// Tautology ground truth from the original literal set.
		seen := map[lits.Lit]bool{}
		wantTaut := false
		for _, l := range orig {
			if seen[l.Neg()] {
				wantTaut = true
			}
			seen[l] = true
		}
		if taut != wantTaut {
			t.Fatalf("Normalize(%v) tautology = %v, want %v", orig, taut, wantTaut)
		}
		if taut {
			// A tautological clause is true under every total assignment.
			for pick := 0; pick < 2; pick++ {
				a := lits.NewAssignment(int(orig.MaxVar()))
				for v := lits.Var(1); int(v) <= a.NumVars(); v++ {
					a.Set(v, lits.BoolToTri((int(v)+pick)%2 == 0))
				}
				if orig.Value(a) != lits.True {
					t.Fatalf("tautology %v evaluates %v under total assignment", orig, orig.Value(a))
				}
			}
			return
		}

		// Strictly sorted: sorted order with no duplicates.
		for i := 1; i < len(norm); i++ {
			if norm[i-1] >= norm[i] {
				t.Fatalf("Normalize(%v) = %v is not strictly sorted at %d", orig, norm, i)
			}
		}

		// Same literal set.
		if len(seen) != len(norm) {
			t.Fatalf("Normalize(%v) = %v: %d distinct literals in, %d out", orig, norm, len(seen), len(norm))
		}
		for _, l := range norm {
			if !seen[l] {
				t.Fatalf("Normalize(%v) = %v invented literal %v", orig, norm, l)
			}
		}

		// Idempotent.
		again, taut2 := norm.Copy().Normalize()
		if taut2 || len(again) != len(norm) {
			t.Fatalf("Normalize not idempotent on %v: %v (taut=%v)", norm, again, taut2)
		}
		for i := range norm {
			if again[i] != norm[i] {
				t.Fatalf("Normalize not idempotent on %v: %v", norm, again)
			}
		}

		// Truth-function preservation under assignments derived from the
		// fuzz input: total, empty, and a partial one.
		n := int(orig.MaxVar())
		assignments := []lits.Assignment{lits.NewAssignment(n)}
		total := lits.NewAssignment(n)
		partial := lits.NewAssignment(n)
		for v := 1; v <= n; v++ {
			val := lits.BoolToTri((v+len(data))%3 == 0)
			total.Set(lits.Var(v), val)
			if v%2 == 0 {
				partial.Set(lits.Var(v), val)
			}
		}
		assignments = append(assignments, total, partial)
		for _, a := range assignments {
			if got, want := norm.Value(a), orig.Value(a); got != want {
				t.Fatalf("Normalize changed truth value: %v vs %v under %v (clause %v -> %v)", got, want, a, orig, norm)
			}
		}

		// The canonical form must be insensitive to input order: any
		// permutation of the same multiset normalizes identically.
		perm := orig.Copy()
		sort.Slice(perm, func(i, j int) bool { return perm[i] > perm[j] })
		norm2, taut3 := perm.Normalize()
		if taut3 || len(norm2) != len(norm) {
			t.Fatalf("permutation changed canonical form of %v: %v (taut=%v)", orig, norm2, taut3)
		}
		for i := range norm {
			if norm2[i] != norm[i] {
				t.Fatalf("permutation changed canonical form: %v vs %v", norm, norm2)
			}
		}
	})
}
