// Package engine is the unified session API over every verification
// configuration in this repository: one context-aware entrypoint
//
//	sess, err := engine.New(circ, propIdx,
//	        engine.WithEngine(engine.KInduction),
//	        engine.WithPortfolio(nil, 4),
//	        engine.WithIncremental(),
//	        engine.WithExchange(racer.ExchangeOptions{Enabled: true}))
//	res, err := sess.Check(ctx)
//
// subsumes the seven legacy entrypoints (bmc.Run, bmc.RunIncremental,
// bmc.RunPortfolio, bmc.RunPortfolioIncremental, induction.Prove,
// induction.ProvePortfolio, induction.ProvePortfolioIncremental), which
// remain as thin deprecated wrappers. The engine×ordering×incremental×
// sharing matrix is validated in one place (Config.Validate), results
// come back as one Result (verdict, depth, trace, per-depth stats,
// portfolio telemetry, warm/exchange attribution), cancellation and
// deadlines are carried by the context.Context passed to Check and
// plumbed down to every solver through sat.Options.Stop/Deadline, and
// per-depth progress streams through WithProgress.
//
// Behind the session sits the Executor seam: every race — cold or warm —
// is submitted through the Executor interface, and every clause-bus
// payload flows through its hook, so a remote executor (the ROADMAP's
// distributed portfolio: gRPC/TCP workers racing the same CNF, first
// verdict cancels the rest, clauses as the wire payload) slots in behind
// the same session API via WithExecutor. LocalExecutor, the default,
// wraps the in-process goroutine pool.
package engine

import (
	"context"
	"time"

	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// Verdict classifies the outcome of a check, across both engines.
type Verdict int

// Verdicts.
const (
	// Unknown: a budget (conflicts, deadline, context cancellation, or
	// the k-induction depth bound) ran out before a verdict.
	Unknown Verdict = iota
	// Falsified: a counter-example was found (and replayed, unless
	// verification is off).
	Falsified
	// Holds: no counter-example up to the BMC depth bound — a bounded
	// guarantee (BMC engine only).
	Holds
	// Proved: the property holds on all reachable states (k-induction
	// engine only).
	Proved
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Falsified:
		return "falsified"
	case Holds:
		return "holds"
	case Proved:
		return "proved"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the verdict as its string form (cmd/bmc -json).
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON parses the string form back (consumers of cmd/bmc -json).
func (v *Verdict) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"falsified"`:
		*v = Falsified
	case `"holds"`:
		*v = Holds
	case `"proved"`:
		*v = Proved
	default:
		*v = Unknown
	}
	return nil
}

// DepthStats records the solve of a single depth — the rows of the
// paper's Fig. 7, extended with portfolio and warm-pool columns.
type DepthStats struct {
	K      int        `json:"k"`
	Status sat.Status `json:"status"`
	Stats  sat.Stats  `json:"stats"`
	// Winner names the strategy whose verdict was kept at this depth
	// (portfolio runs only; empty otherwise).
	Winner string `json:"winner,omitempty"`
	// Wall is the wall-clock time of this depth, including CNF
	// generation, the SAT call(s), and score maintenance. EncodeWall and
	// SolveWall split out its two dominant parts: building/feeding the
	// depth's CNF, and the SAT call (the race's wall for portfolio runs).
	Wall           time.Duration `json:"wall"`
	EncodeWall     time.Duration `json:"encode_wall,omitempty"`
	SolveWall      time.Duration `json:"solve_wall,omitempty"`
	FormulaVars    int           `json:"formula_vars"`
	FormulaClauses int           `json:"formula_clauses"`
	FormulaLits    int           `json:"formula_lits"`
	// CoreClauses/CoreVars describe the extracted unsat core (0 on SAT
	// or when recording is off).
	CoreClauses int `json:"core_clauses"`
	CoreVars    int `json:"core_vars"`
	// RecorderBytes approximates the CDG memory footprint.
	RecorderBytes int64 `json:"recorder_bytes"`
	// HeapAllocBytes/TotalAllocBytes/GCCount are runtime memory readings
	// (runtime.ReadMemStats) sampled as the depth finished — instrumented
	// (WithMetrics) sessions only, zero otherwise. HeapAllocBytes is the
	// live heap at that instant; TotalAllocBytes and GCCount count bytes
	// allocated and GC cycles since the check started, so they grow
	// monotonically over depths and consecutive depths subtract to
	// per-depth figures.
	HeapAllocBytes  int64 `json:"heap_alloc_bytes,omitempty"`
	TotalAllocBytes int64 `json:"total_alloc_bytes,omitempty"`
	GCCount         int64 `json:"gc_count,omitempty"`
}

// Result is the unified outcome of Session.Check: one struct covers
// every engine×ordering×incremental×sharing configuration, with fields
// that do not apply to the ran configuration left at their zero values.
type Result struct {
	// Engine echoes the session's engine kind.
	Engine Kind `json:"engine"`
	// Verdict is the outcome; K its depth: the counter-example length
	// for Falsified, the deepest fully checked depth for Holds, the
	// closing induction depth for Proved, and for Unknown the depth the
	// budget ran out at (BMC: the first unfinished depth; k-induction:
	// the last depth whose queries ran, -1 if none).
	Verdict Verdict `json:"verdict"`
	K       int     `json:"k"`
	// Trace is the counter-example (Falsified only).
	Trace *unroll.Trace `json:"trace,omitempty"`
	// PerDepth records every solved depth (BMC engine only).
	PerDepth []DepthStats `json:"per_depth,omitempty"`
	// Total accumulates solver statistics: for BMC, across the depth
	// loop (portfolio runs count winners only); zero for k-induction
	// (see BaseStats/StepStats).
	Total sat.Stats `json:"total"`
	// BaseStats/StepStats accumulate per-query statistics (k-induction
	// engine only; portfolio runs count winners only).
	BaseStats sat.Stats `json:"base_stats,omitzero"`
	StepStats sat.Stats `json:"step_stats,omitzero"`
	// TotalTime is the wall-clock time of the whole check.
	TotalTime time.Duration `json:"total_time"`
	// Strategies and Jobs echo the portfolio configuration (portfolio
	// runs only); Warm marks persistent-pool (incremental portfolio)
	// runs.
	Strategies []string `json:"strategies,omitempty"`
	Jobs       int      `json:"jobs,omitempty"`
	Warm       bool     `json:"warm,omitempty"`
	// Telemetry records which ordering won at which depth and the
	// clause-bus traffic (BMC portfolio runs).
	Telemetry *portfolio.Telemetry `json:"telemetry,omitempty"`
	// BaseTelemetry/StepTelemetry are the per-query race telemetries
	// (k-induction portfolio runs).
	BaseTelemetry *portfolio.Telemetry `json:"base_telemetry,omitempty"`
	StepTelemetry *portfolio.Telemetry `json:"step_telemetry,omitempty"`
	// Metrics is the session registry's snapshot at the end of the check
	// (WithMetrics sessions only).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// HeapAllocBytes/TotalAllocBytes/GCCount are the check's final memory
	// telemetry (WithMetrics sessions only; the instantaneous readings
	// behind them are the mem_* gauges in Metrics): the live heap as the
	// check ended, and the bytes allocated / GC cycles spent by this
	// check (deltas from the check's start, so repeated Checks in one
	// process stay comparable).
	HeapAllocBytes  int64 `json:"heap_alloc_bytes,omitempty"`
	TotalAllocBytes int64 `json:"total_alloc_bytes,omitempty"`
	GCCount         int64 `json:"gc_count,omitempty"`
}

// Session is one configured check of one property: circuit, property
// index, and a validated Config. Check may be called repeatedly; every
// call runs from scratch with fresh solvers and boards.
type Session struct {
	circ    *circuit.Circuit
	propIdx int
	cfg     Config
	// mem publishes depth-boundary memory readings into the session
	// registry; nil (no-op) without WithMetrics. memBase is the reading
	// taken as the current Check started — the zero point of the
	// cumulative columns (TotalAllocBytes, GCCount).
	mem     *obs.MemSampler
	memBase obs.MemSample
}

// New builds a session for property propIdx of the circuit. The
// configuration starts from defaults (BMC engine, dynamic ordering,
// depth 20, sat.Defaults solver, LocalExecutor) and is refined by the
// options; it is validated here, so a non-nil error means either an
// invalid knob combination (Config.Validate's message names it) or a
// structurally invalid circuit/property index.
func New(c *circuit.Circuit, propIdx int, opts ...Option) (*Session, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Validate the circuit and property index up front; Check rebuilds
	// its own unroller per call (unrollers carry per-run state).
	if _, err := unroll.New(c, propIdx); err != nil {
		return nil, err
	}
	return &Session{circ: c, propIdx: propIdx, cfg: cfg, mem: obs.NewMemSampler(cfg.Metrics)}, nil
}

// Config returns a copy of the session's effective configuration.
func (s *Session) Config() Config { return s.cfg }

// Check runs the configured verification under ctx. Cancellation and
// deadline are honored in every configuration: the context's Done
// channel is plumbed into every solver's cooperative stop poll and into
// every race's cancellation, and its deadline into sat.Options.Deadline,
// so Check returns promptly (bounded by the solver poll interval) with
// Verdict == Unknown and the partial results gathered so far. A non-nil
// error is reserved for structural problems (a counter-example that
// fails replay); budget and cancellation outcomes are verdicts, not
// errors.
func (s *Session) Check(ctx context.Context) (*Result, error) {
	u, err := unroll.New(s.circ, s.propIdx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if s.mem != nil {
		s.memBase = s.mem.Sample()
	}
	root := s.cfg.Tracer.Begin("engine", "check")
	root.SetArg("engine", s.cfg.Kind.String())
	var res *Result
	if s.cfg.Kind == KInduction {
		switch {
		case s.cfg.Incremental:
			res, err = s.runKindWarm(ctx, u)
		case s.cfg.Portfolio:
			res, err = s.runKindPortfolio(ctx, u)
		default:
			res, err = s.runKindSequential(ctx, u)
		}
	} else {
		switch {
		case s.cfg.Portfolio && s.cfg.Incremental:
			res, err = s.runBMCWarm(ctx, u)
		case s.cfg.Portfolio:
			res, err = s.runBMCPortfolio(ctx, u)
		case s.cfg.Incremental:
			res, err = s.runBMCIncremental(ctx, u)
		default:
			res, err = s.runBMCScratch(ctx, u)
		}
	}
	if err != nil {
		root.SetArg("error", err.Error())
		root.End()
		return nil, err
	}
	res.Engine = s.cfg.Kind
	res.TotalTime = time.Since(start)
	if s.mem != nil {
		m := s.mem.Sample()
		res.HeapAllocBytes = m.HeapAlloc
		res.TotalAllocBytes = m.TotalAlloc - s.memBase.TotalAlloc
		res.GCCount = m.GCCount - s.memBase.GCCount
	}
	if s.cfg.Metrics != nil {
		snap := s.cfg.Metrics.Snapshot()
		res.Metrics = &snap
	}
	root.SetArg("verdict", res.Verdict.String())
	root.SetArg("k", res.K)
	root.End()
	return res, nil
}

// DeadlineContext translates a legacy deadline field (zero = none) into
// the context Check understands — the shared shim of the deprecated
// bmc/induction wrappers, whose Options carry a time.Time instead of a
// context. Callers must call cancel once the check returns.
func DeadlineContext(deadline time.Time) (context.Context, context.CancelFunc) {
	if deadline.IsZero() {
		return context.Background(), func() {}
	}
	return context.WithDeadline(context.Background(), deadline)
}

// executor resolves the configured executor (default LocalExecutor).
func (s *Session) executor() Executor {
	if s.cfg.Executor != nil {
		return s.cfg.Executor
	}
	return LocalExecutor{}
}

// emit delivers a progress event to the configured consumer, if any.
func (s *Session) emit(e Event) {
	if s.cfg.Progress != nil {
		s.cfg.Progress(e)
	}
}

// solverBase derives the per-call solver options every loop starts from:
// the config's base options with the session-managed fields cleared, the
// per-instance conflict budget applied, and the context's deadline and
// Done channel plumbed into sat.Options.Deadline/Stop — the single place
// cancellation enters the solver layer.
func (s *Session) solverBase(ctx context.Context) sat.Options {
	so := s.cfg.Solver
	so.Guidance = nil
	so.SwitchAfterDecisions = 0
	so.Recorder = nil
	so.Stop = ctx.Done()
	if s.cfg.PerInstanceConflicts > 0 {
		so.MaxConflicts = s.cfg.PerInstanceConflicts
	}
	if dl, ok := ctx.Deadline(); ok {
		so.Deadline = dl
	}
	return so
}
