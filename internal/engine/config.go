package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
)

// Kind selects the verification engine a session runs.
type Kind int

// Engines.
const (
	// BMC is plain bounded model checking: search for a counter-example
	// of increasing length up to the depth bound.
	BMC Kind = iota
	// KInduction is temporal induction: BMC base cases plus the inductive
	// step query, proving properties outright when the step closes.
	KInduction
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case BMC:
		return "bmc"
	case KInduction:
		return "k-induction"
	default:
		return "?"
	}
}

// Config is the full, validated configuration of a Session. Build one
// through New's functional options; direct construction is supported for
// tests and for callers that want to Validate a combination without
// opening a circuit (cmd/bmc's flag translation does exactly that).
type Config struct {
	// Kind selects the verification engine (BMC or KInduction).
	Kind Kind
	// MaxDepth is the largest unrolling depth / induction depth checked
	// (inclusive).
	MaxDepth int
	// Ordering is the decision-ordering strategy of single-strategy runs;
	// ignored when Portfolio is set (the portfolio races Strategies).
	Ordering core.Strategy
	// Portfolio races a strategy set at every depth instead of running
	// one ordering.
	Portfolio bool
	// Strategies is the raced set (Portfolio only; empty selects
	// portfolio.DefaultSet).
	Strategies portfolio.StrategySet
	// Jobs caps concurrent solvers per race (Portfolio only; <= 0 means
	// one per strategy).
	Jobs int
	// Incremental keeps live solvers across depths: a single persistent
	// solver for single-strategy runs, the warm racer pool when combined
	// with Portfolio.
	Incremental bool
	// Exchange configures the warm pool's clause bus (Incremental +
	// Portfolio only). For KInduction it drives the base-query pool.
	Exchange racer.ExchangeOptions
	// ExchangeSet records that Exchange was configured explicitly, so
	// Validate can reject it on engines that have no bus rather than
	// silently ignoring it (racer.ExchangeOptions' zero value is
	// indistinguishable from "never mentioned" otherwise).
	ExchangeSet bool
	// StepExchange configures the k-induction step pool's own bus; left
	// zero it stays off even when Exchange is on (step sequences are
	// SAT-dominated, where sharing perturbs phase-saving momentum).
	StepExchange racer.ExchangeOptions
	// StepExchangeSet mirrors ExchangeSet for StepExchange.
	StepExchangeSet bool
	// ScoreMode selects the bmc_score accumulation rule (BMC engine; the
	// k-induction boards always use core.WeightedSum, as the legacy
	// entrypoints did).
	ScoreMode core.ScoreMode
	// SwitchDivisor overrides the dynamic strategy's switch threshold
	// divisor (0 selects core.SwitchDivisor; BMC engine only).
	SwitchDivisor int
	// Solver carries the base solver options; per-strategy fields
	// (Guidance, SwitchAfterDecisions, Recorder, Stop) are managed by the
	// session.
	Solver sat.Options
	// PerInstanceConflicts bounds each SAT call (0 = unlimited).
	PerInstanceConflicts int64
	// ForceRecording attaches proof recorders even for strategies that do
	// not consume cores (the §3.1 overhead experiment).
	ForceRecording bool
	// SkipTraceVerification disables the counter-example replay check
	// (benchmarks only).
	SkipTraceVerification bool
	// Progress, when non-nil, receives per-depth events as the check
	// runs. It is called synchronously from the depth loop's goroutine,
	// never concurrently.
	Progress func(Event)
	// Executor runs the session's races; nil selects LocalExecutor (the
	// in-process goroutine pool).
	Executor Executor
	// Metrics, when non-nil, collects instrumentation from every layer of
	// the check — solver counters per query and strategy, clause-bus
	// traffic per link, race outcomes, frame-build costs — and its
	// snapshot lands in Result.Metrics. Nil (the default) keeps every hot
	// path on its one-branch no-op.
	Metrics *obs.Registry
	// Tracer, when non-nil, records the check as Chrome-trace spans: the
	// root check span, per-depth and per-race spans on each query's lane,
	// and one span per racer attempt on its strategy's lane.
	Tracer *obs.Tracer
}

// Option is a functional configuration knob for New.
type Option func(*Config)

// WithEngine selects the verification engine (default BMC).
func WithEngine(k Kind) Option { return func(c *Config) { c.Kind = k } }

// WithOrdering selects the decision ordering of a single-strategy run
// (default core.OrderDynamic, the paper's best configuration).
func WithOrdering(st core.Strategy) Option { return func(c *Config) { c.Ordering = st } }

// WithPortfolio races the given strategy set at every depth, first
// verdict wins (nil or empty set selects portfolio.DefaultSet). jobs
// caps the concurrent solvers per race; <= 0 means one per strategy.
func WithPortfolio(set portfolio.StrategySet, jobs int) Option {
	return func(c *Config) {
		c.Portfolio = true
		c.Strategies = set
		c.Jobs = jobs
	}
}

// WithIncremental keeps live solvers across depths (with WithPortfolio:
// the warm racer pool).
func WithIncremental() Option { return func(c *Config) { c.Incremental = true } }

// WithExchange enables/configures the warm pool's clause bus. Requires
// WithIncremental and WithPortfolio (Validate rejects the rest).
func WithExchange(ex racer.ExchangeOptions) Option {
	return func(c *Config) {
		c.Exchange = ex
		c.ExchangeSet = true
	}
}

// WithStepExchange configures the k-induction step pool's own clause bus
// (off by default even when WithExchange is on).
func WithStepExchange(ex racer.ExchangeOptions) Option {
	return func(c *Config) {
		c.StepExchange = ex
		c.StepExchangeSet = true
	}
}

// WithBudgets sets the depth bound and the per-SAT-call conflict budget
// (0 = unlimited conflicts). Wall-clock budgets are carried by the
// context passed to Session.Check.
func WithBudgets(maxDepth int, perInstanceConflicts int64) Option {
	return func(c *Config) {
		c.MaxDepth = maxDepth
		c.PerInstanceConflicts = perInstanceConflicts
	}
}

// WithSolver replaces the base solver options (default sat.Defaults()).
func WithSolver(opts sat.Options) Option { return func(c *Config) { c.Solver = opts } }

// WithScoreMode selects the bmc_score accumulation rule.
func WithScoreMode(m core.ScoreMode) Option { return func(c *Config) { c.ScoreMode = m } }

// WithSwitchDivisor overrides the dynamic strategy's switch divisor.
func WithSwitchDivisor(d int) Option { return func(c *Config) { c.SwitchDivisor = d } }

// WithForceRecording attaches proof recorders unconditionally.
func WithForceRecording() Option { return func(c *Config) { c.ForceRecording = true } }

// WithoutTraceVerification disables counter-example replay (benchmarks).
func WithoutTraceVerification() Option { return func(c *Config) { c.SkipTraceVerification = true } }

// WithProgress streams per-depth events to fn while the check runs.
func WithProgress(fn func(Event)) Option { return func(c *Config) { c.Progress = fn } }

// WithExecutor replaces the race executor (default LocalExecutor).
func WithExecutor(ex Executor) Option { return func(c *Config) { c.Executor = ex } }

// WithMetrics collects instrumentation from every layer of the check
// into reg; the session snapshots it into Result.Metrics.
func WithMetrics(reg *obs.Registry) Option { return func(c *Config) { c.Metrics = reg } }

// WithTracer records the check as Chrome-trace spans on tr (write the
// file with obs.Tracer.WriteJSON after Check returns).
func WithTracer(tr *obs.Tracer) Option { return func(c *Config) { c.Tracer = tr } }

// defaultConfig is New's starting point before options apply.
func defaultConfig() Config {
	return Config{
		Kind:     BMC,
		MaxDepth: 20,
		Ordering: core.OrderDynamic,
		Solver:   sat.Defaults(),
	}
}

// NewConfig applies the options on top of the defaults without building
// a session — for callers (cmd/bmc) that want to Validate a combination
// before opening a circuit.
func NewConfig(opts ...Option) Config {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Validate vets the configuration matrix in one place — every
// combination the legacy entrypoints (and cmd/bmc's flag parsing) used
// to reject ad hoc errors out here with a message naming the offending
// knob. A nil error means Check can run the configuration.
func (c *Config) Validate() error {
	if c.Kind != BMC && c.Kind != KInduction {
		return fmt.Errorf("engine: unknown engine kind %d (valid: BMC, KInduction)", int(c.Kind))
	}
	if c.MaxDepth < 0 {
		return fmt.Errorf("engine: max depth must be >= 0, got %d", c.MaxDepth)
	}
	if c.PerInstanceConflicts < 0 {
		return fmt.Errorf("engine: per-instance conflict budget must be >= 0, got %d", c.PerInstanceConflicts)
	}
	if c.Jobs < 0 {
		return fmt.Errorf("engine: jobs must be >= 0 (0 = one solver per strategy), got %d", c.Jobs)
	}
	if !c.Portfolio {
		if c.Jobs > 0 {
			return fmt.Errorf("engine: jobs require a portfolio (a single-ordering run has one solver per query)")
		}
		if len(c.Strategies) > 0 {
			return fmt.Errorf("engine: a strategy set requires a portfolio (a single-strategy run takes one ordering)")
		}
		if c.Ordering.String() == "unknown" {
			return fmt.Errorf("engine: unknown ordering strategy %d (valid: vsids, static, dynamic, timeaxis)", int(c.Ordering))
		}
	}
	if c.ExchangeSet && !(c.Portfolio && c.Incremental) {
		return fmt.Errorf("engine: clause exchange requires an incremental portfolio (the bus runs between multiple persistent racers)")
	}
	if c.StepExchangeSet {
		if c.Kind != KInduction {
			return fmt.Errorf("engine: step-query clause exchange only applies to the k-induction engine")
		}
		if !(c.Portfolio && c.Incremental) {
			return fmt.Errorf("engine: step-query clause exchange requires an incremental portfolio")
		}
	}
	if c.Kind == KInduction && !c.Incremental && !c.Portfolio && c.Ordering == core.OrderTimeAxis {
		return fmt.Errorf("engine: the sequential k-induction engine supports vsids|static|dynamic orderings (timeaxis needs a portfolio or the incremental warm pools)")
	}
	return nil
}
