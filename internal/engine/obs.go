package engine

import (
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// Observability plumbing of the session: depth/race/racer spans on the
// configured tracer and the RaceFinished/ExchangeFlushed mirrors into the
// progress stream. Everything here is nil-safe — a session without
// WithMetrics/WithTracer pays the nil checks and nothing else.
//
// Trace layout: the root "check" span lives on the "engine" lane; each
// query's depth and race spans share the query's lane ("bmc", "base",
// "step"), nesting by containment; each racer attempt is synthesized
// retroactively (from the race's start plus the attempt's queue wait) on
// its own "<query>:<strategy>" lane, so concurrent attempts never falsely
// nest.

// beginDepth opens the depth-k span on the query's lane.
func (s *Session) beginDepth(query Query, k int) *obs.Span {
	sp := s.cfg.Tracer.Begin(string(query), "depth "+strconv.Itoa(k))
	sp.SetArg("k", k)
	return sp
}

// finishDepth closes the depth span with the depth's outcome and emits
// the DepthFinished event — the single exit point of every depth branch.
// Instrumented sessions also stamp the depth's memory columns here: one
// ReadMemStats per depth boundary, far from any solver loop, which is
// why the call sites pass ds before appending it to Result.PerDepth.
func (s *Session) finishDepth(sp *obs.Span, query Query, ds *DepthStats) {
	if s.mem != nil {
		m := s.mem.Sample()
		ds.HeapAllocBytes = m.HeapAlloc
		ds.TotalAllocBytes = m.TotalAlloc - s.memBase.TotalAlloc
		ds.GCCount = m.GCCount - s.memBase.GCCount
	}
	if sp != nil {
		sp.SetArg("status", ds.Status.String())
		sp.SetArg("conflicts", ds.Stats.Conflicts)
		if ds.Winner != "" {
			sp.SetArg("winner", ds.Winner)
		}
		sp.End()
	}
	s.emit(Event{Kind: DepthFinished, Query: query, K: ds.K, Depth: *ds})
}

// observeRace records a joined race: one race span on the query's lane,
// one attempt span per racer that ran (on its strategy's lane,
// reconstructed from the race start, the attempt's queue wait, and its
// wall time), and the RaceFinished mirror into the progress stream.
func (s *Session) observeRace(query Query, k int, race *portfolio.RaceResult) {
	if tr := s.cfg.Tracer; tr != nil {
		args := map[string]any{"k": k}
		if race.Winner >= 0 {
			args["winner"] = race.WinnerName()
			args["verdict"] = race.Result.Status.String()
			args["conflicts"] = race.Result.Stats.Conflicts
		}
		tr.Complete(string(query), "race "+strconv.Itoa(k), race.Start, race.Wall, args)
		for i, o := range race.Outcomes {
			if o.Skipped {
				continue
			}
			tr.Complete(string(query)+":"+o.Name, "attempt "+strconv.Itoa(k),
				race.Start.Add(o.Wait), o.Wall, map[string]any{
					"k":         k,
					"status":    o.Status.String(),
					"conflicts": o.Stats.Conflicts,
					"won":       i == race.Winner,
				})
		}
	}
	if s.cfg.Progress == nil {
		return
	}
	rows := make([]RacerRow, len(race.Outcomes))
	for i, o := range race.Outcomes {
		rows[i] = RacerRow{
			Name:      o.Name,
			Status:    o.Status,
			Conflicts: o.Stats.Conflicts,
			Wall:      o.Wall,
			Wait:      o.Wait,
			Winner:    i == race.Winner,
			Canceled:  o.Canceled,
			Skipped:   o.Skipped,
		}
	}
	s.emit(Event{Kind: RaceFinished, Query: query, K: k, Racers: rows})
}

// observeExchange mirrors one depth-boundary clause-bus round into the
// progress stream, one row per strategy that moved (or dropped) clauses.
// An idle round — bus off, or nothing to share — emits nothing.
func (s *Session) observeExchange(query Query, k int, out *racer.DepthOutcome) {
	if s.cfg.Progress == nil {
		return
	}
	names := map[string]bool{}
	for n := range out.Exported {
		names[n] = true
	}
	for n := range out.Imported {
		names[n] = true
	}
	for n := range out.DedupDropped {
		names[n] = true
	}
	if len(names) == 0 {
		return
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	rows := make([]ExchangeRow, len(ordered))
	for i, n := range ordered {
		rows[i] = ExchangeRow{
			Strategy:     n,
			Exported:     out.Exported[n],
			Imported:     out.Imported[n],
			DedupDropped: out.DedupDropped[n],
		}
	}
	s.emit(Event{Kind: ExchangeFlushed, Query: query, K: k, Exchange: rows})
}

// solverMetrics resolves the per-strategy solver metric bundle, nil when
// the session has no registry (so sat.SolveAssuming pays one branch).
func (s *Session) solverMetrics(query Query, strategy string) *sat.Metrics {
	if s.cfg.Metrics == nil {
		return nil
	}
	return sat.NewMetrics(s.cfg.Metrics, "query", string(query), "strategy", strategy)
}

// unrollMetrics resolves the frame-build metric bundle for a query's
// incremental encoder, nil when the session has no registry.
func (s *Session) unrollMetrics(query Query) *unroll.Metrics {
	if s.cfg.Metrics == nil {
		return nil
	}
	return unroll.NewMetrics(s.cfg.Metrics, "query", string(query))
}
