package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/portfolio"
	"repro/internal/racer"
)

// TestConfigValidate enumerates the engine×ordering×incremental×sharing
// matrix: every rejected combination errors out with a message naming
// the offending knob, and every supported combination passes. This is
// the single validation point that replaced cmd/bmc's hand-rolled
// flag.Visit matrix.
func TestConfigValidate(t *testing.T) {
	mk := func(opts ...Option) Config {
		cfg := defaultConfig()
		for _, o := range opts {
			o(&cfg)
		}
		return cfg
	}
	exchange := racer.ExchangeOptions{Enabled: true}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error, "" = must pass
	}{
		{"default", mk(), ""},
		{"bmc vsids", mk(WithOrdering(core.OrderVSIDS)), ""},
		{"bmc timeaxis", mk(WithOrdering(core.OrderTimeAxis)), ""},
		{"bmc incremental", mk(WithIncremental()), ""},
		{"bmc portfolio", mk(WithPortfolio(nil, 0)), ""},
		{"bmc portfolio jobs", mk(WithPortfolio(nil, 4)), ""},
		{"bmc warm portfolio", mk(WithPortfolio(nil, 0), WithIncremental()), ""},
		{"bmc warm with exchange", mk(WithPortfolio(nil, 0), WithIncremental(), WithExchange(exchange)), ""},
		{"kind sequential", mk(WithEngine(KInduction)), ""},
		{"kind incremental single order", mk(WithEngine(KInduction), WithIncremental()), ""},
		{"kind incremental timeaxis", mk(WithEngine(KInduction), WithIncremental(), WithOrdering(core.OrderTimeAxis)), ""},
		{"kind portfolio", mk(WithEngine(KInduction), WithPortfolio(nil, 0)), ""},
		{"kind warm portfolio", mk(WithEngine(KInduction), WithPortfolio(nil, 2), WithIncremental()), ""},
		{"kind warm with both buses", mk(WithEngine(KInduction), WithPortfolio(nil, 0), WithIncremental(),
			WithExchange(exchange), WithStepExchange(exchange)), ""},

		{"unknown engine", mk(WithEngine(Kind(42))), "unknown engine kind"},
		{"negative depth", mk(WithBudgets(-1, 0)), "max depth"},
		{"negative conflicts", mk(WithBudgets(5, -1)), "conflict budget"},
		{"negative jobs", mk(WithPortfolio(nil, -1)), "jobs must be >= 0"},
		{"jobs without portfolio", mk(func(c *Config) { c.Jobs = 2 }), "jobs require a portfolio"},
		{"strategies without portfolio", mk(func(c *Config) { c.Strategies = portfolio.DefaultSet() }),
			"strategy set requires a portfolio"},
		{"unknown ordering", mk(WithOrdering(core.Strategy(7))), "unknown ordering"},
		{"exchange without portfolio", mk(WithIncremental(), WithExchange(exchange)),
			"exchange requires an incremental portfolio"},
		{"exchange without incremental", mk(WithPortfolio(nil, 0), WithExchange(exchange)),
			"exchange requires an incremental portfolio"},
		{"exchange disabled still needs warm portfolio", mk(WithExchange(racer.ExchangeOptions{})),
			"exchange requires an incremental portfolio"},
		{"step exchange on bmc", mk(WithPortfolio(nil, 0), WithIncremental(), WithStepExchange(exchange)),
			"only applies to the k-induction engine"},
		{"step exchange cold kind", mk(WithEngine(KInduction), WithPortfolio(nil, 0), WithStepExchange(exchange)),
			"requires an incremental portfolio"},
		{"sequential kind timeaxis", mk(WithEngine(KInduction), WithOrdering(core.OrderTimeAxis)),
			"timeaxis"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: expected an error mentioning %q, got none", tc.name, tc.wantErr)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestNewValidates: New applies the options and runs Validate, so an
// invalid combination never produces a Session.
func TestNewValidates(t *testing.T) {
	if _, err := New(nil, 0, WithEngine(Kind(9))); err == nil {
		t.Fatal("New accepted an unknown engine kind")
	}
}
