package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/obs"
)

// TestProgressEventsUnderCancellation cancels every engine shape mid-race
// with a progress consumer, a metrics registry, and a tracer attached:
// every delivered event must be well-formed, no event may arrive after
// Check returns (the consumer contract — events come synchronously from
// the depth loop), and the trace must still be valid JSON with balanced
// spans. Run under -race in CI, this also asserts the observability
// plumbing is data-race-free across all cancellation paths.
func TestProgressEventsUnderCancellation(t *testing.T) {
	for _, tc := range cancelConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			m, ok := bench.ByName(tc.model)
			if !ok {
				t.Fatalf("model %s missing", tc.model)
			}
			var mu sync.Mutex
			var events []engine.Event
			returned := false
			progress := func(e engine.Event) {
				mu.Lock()
				defer mu.Unlock()
				if returned {
					t.Errorf("event kind=%d query=%s k=%d delivered after Check returned", e.Kind, e.Query, e.K)
					return
				}
				events = append(events, e)
			}
			reg := obs.NewRegistry()
			tr := obs.NewTracer()
			opts := append([]engine.Option{
				engine.WithBudgets(60, 0),
				engine.WithProgress(progress),
				engine.WithMetrics(reg),
				engine.WithTracer(tr),
			}, tc.opts...)
			sess, err := engine.New(m.Build(), 0, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := sess.Check(ctx)
				done <- err
			}()
			time.Sleep(150 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("Check returned error on cancellation: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Check did not return within 5s of cancellation")
			}
			mu.Lock()
			returned = true
			mu.Unlock()
			// Catch any straggler deliveries racing the return.
			time.Sleep(100 * time.Millisecond)

			mu.Lock()
			defer mu.Unlock()
			started := map[[2]interface{}]bool{}
			for _, e := range events {
				if e.Query != engine.QueryBMC && e.Query != engine.QueryBase && e.Query != engine.QueryStep {
					t.Fatalf("event with unknown query %q", e.Query)
				}
				if e.K < 0 || e.K > 60 {
					t.Fatalf("event with out-of-range depth %d", e.K)
				}
				key := [2]interface{}{e.Query, e.K}
				switch e.Kind {
				case engine.DepthStarted:
					started[key] = true
				case engine.DepthFinished:
					if !started[key] {
						t.Errorf("DepthFinished %s/%d without a DepthStarted", e.Query, e.K)
					}
					if e.Depth.K != e.K {
						t.Errorf("DepthFinished %s/%d carries stats for depth %d", e.Query, e.K, e.Depth.K)
					}
				case engine.RaceFinished:
					if !started[key] {
						t.Errorf("RaceFinished %s/%d without a DepthStarted", e.Query, e.K)
					}
					if len(e.Racers) == 0 {
						t.Errorf("RaceFinished %s/%d with no racer rows", e.Query, e.K)
					}
					winners := 0
					for _, r := range e.Racers {
						if r.Name == "" {
							t.Errorf("RaceFinished %s/%d has an unnamed racer", e.Query, e.K)
						}
						if r.Winner {
							winners++
							if r.Skipped {
								t.Errorf("RaceFinished %s/%d: winner %s marked skipped", e.Query, e.K, r.Name)
							}
						}
					}
					if winners > 1 {
						t.Errorf("RaceFinished %s/%d has %d winners", e.Query, e.K, winners)
					}
				case engine.ExchangeFlushed:
					if len(e.Exchange) == 0 {
						t.Errorf("ExchangeFlushed %s/%d with no rows (idle rounds must not emit)", e.Query, e.K)
					}
					for _, r := range e.Exchange {
						if r.Strategy == "" {
							t.Errorf("ExchangeFlushed %s/%d has an unnamed strategy row", e.Query, e.K)
						}
					}
				default:
					t.Fatalf("unknown event kind %d", e.Kind)
				}
			}

			// The trace must be valid Chrome-trace JSON even on a
			// cancelled check (the root span is closed on every path).
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			var parsed struct {
				TraceEvents []struct {
					Ph   string `json:"ph"`
					Name string `json:"name"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
				t.Fatalf("trace is not valid JSON: %v", err)
			}
			foundRoot := false
			for _, ev := range parsed.TraceEvents {
				if ev.Ph == "X" && ev.Name == "check" {
					foundRoot = true
				}
			}
			if !foundRoot {
				t.Errorf("trace missing the closed root check span")
			}
		})
	}
}
