package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lits"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// The three k-induction loops (sequential, cold portfolio, warm pools),
// ported from the legacy induction.Prove* entrypoints. Per depth the
// base query (a counter-example of length exactly k) and the induction
// step query (the simple-path step case) are solved — in parallel for
// the portfolio engines, with a moot step race cancelled cooperatively —
// and the verdict logic is identical across all three: Falsified needs a
// SAT base, Proved needs the step UNSAT at a k whose base cases are all
// clean.

// kindResult initializes the k-induction result shell. K carries the
// last depth whose queries actually ran (-1 when none did).
func kindResult() *Result { return &Result{Verdict: Unknown, K: -1} }

// runKindSequential is the sequential prover (legacy induction.Prove).
func (s *Session) runKindSequential(ctx context.Context, u *unroll.Unroller) (*Result, error) {
	res := kindResult()
	baseBoard := core.NewScoreBoard(core.WeightedSum)
	stepBoard := core.NewScoreBoard(core.WeightedSum)
	useCores := s.cfg.Ordering == core.OrderStatic || s.cfg.Ordering == core.OrderDynamic
	baseMetrics := s.solverMetrics(QueryBase, s.cfg.Ordering.String())
	stepMetrics := s.solverMetrics(QueryStep, s.cfg.Ordering.String())

	for k := 0; k <= s.cfg.MaxDepth; k++ {
		if ctx.Err() != nil {
			// The budget expired before depth k was attempted: K stays at
			// the last depth whose queries ran, not the one that never did.
			return res, nil
		}
		res.K = k
		depthStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryBase, K: k})
		baseSpan := s.beginDepth(QueryBase, k)

		// Base case: a counter-example of length exactly k.
		base := u.Formula(k)
		baseEncode := time.Since(depthStart)
		r, rec := s.solveKindQuery(ctx, base, baseBoard, useCores, baseMetrics)
		res.BaseStats.Add(r.Stats)
		baseDS := DepthStats{K: k, Status: r.Status, Stats: r.Stats,
			EncodeWall: baseEncode, SolveWall: r.Stats.SolveTime, Wall: time.Since(depthStart)}
		s.finishDepth(baseSpan, QueryBase, &baseDS)
		switch r.Status {
		case sat.Sat:
			res.Verdict = Falsified
			res.Trace = u.ExtractTrace(r.Model, k)
			if !s.cfg.SkipTraceVerification && !u.Replay(res.Trace) {
				return nil, fmt.Errorf("engine: depth-%d counter-example failed replay", k)
			}
			return res, nil
		case sat.Unsat:
			if rec != nil && useCores {
				baseBoard.Update(rec.CoreVars(base), k+1)
			}
		default: // Unknown/Interrupted: budget exhausted or cancelled
			return res, nil
		}

		// Step case: P-states s_0..s_k, pairwise distinct, with a
		// transition into ¬P at s_{k+1}. UNSAT closes the proof.
		stepStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryStep, K: k})
		stepSpan := s.beginDepth(QueryStep, k)
		step := unroll.StepFormula(u, k)
		stepEncode := time.Since(stepStart)
		r, rec = s.solveKindQuery(ctx, step, stepBoard, useCores, stepMetrics)
		res.StepStats.Add(r.Stats)
		stepDS := DepthStats{K: k, Status: r.Status, Stats: r.Stats,
			EncodeWall: stepEncode, SolveWall: r.Stats.SolveTime, Wall: time.Since(stepStart)}
		s.finishDepth(stepSpan, QueryStep, &stepDS)
		switch r.Status {
		case sat.Unsat:
			res.Verdict = Proved
			if rec != nil && useCores {
				stepBoard.Update(rec.CoreVars(step), k+1)
			}
			return res, nil
		case sat.Sat:
			// SAT step: no core; scores carry over unchanged.
		default: // Unknown/Interrupted
			return res, nil
		}
	}
	res.K = s.cfg.MaxDepth
	return res, nil
}

// solveKindQuery dispatches one sequential-prover instance under the
// configured ordering.
func (s *Session) solveKindQuery(ctx context.Context, f *cnf.Formula, board *core.ScoreBoard, useCores bool, m *sat.Metrics) (sat.Result, *core.Recorder) {
	so := s.solverBase(ctx)
	so.Metrics = m
	s.cfg.Ordering.Configure(&so, board, f)
	var rec *core.Recorder
	if useCores {
		rec = core.NewRecorder(f.NumClauses())
		so.Recorder = rec
	}
	return sat.New(f, so).Solve(), rec
}

// stepStopper builds the step race's cancellation channel: closed when
// the base verdict makes the step moot, or when ctx is cancelled (so a
// mid-step cancellation interrupts the race promptly instead of waiting
// for its budget). The returned release func must be called once the
// step race has joined.
func stepStopper(ctx context.Context) (stop chan struct{}, cancel func(), release func()) {
	stop = make(chan struct{})
	var once sync.Once
	cancel = func() { once.Do(func() { close(stop) }) }
	release = func() {}
	if ctx.Done() != nil {
		done := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				cancel()
			case <-done:
			}
		}()
		release = func() { close(done) }
	}
	return stop, cancel, release
}

// runKindPortfolio races base and step queries in parallel, each across
// the strategy set (legacy induction.ProvePortfolio); races go through
// the configured Executor.
func (s *Session) runKindPortfolio(ctx context.Context, u *unroll.Unroller) (*Result, error) {
	strategies := s.strategySet()
	res := kindResult()
	res.BaseTelemetry = portfolio.NewTelemetry()
	res.StepTelemetry = portfolio.NewTelemetry()
	res.Strategies = strategies.Names()
	res.Jobs = s.cfg.Jobs
	baseBoard := core.NewScoreBoard(core.WeightedSum)
	stepBoard := core.NewScoreBoard(core.WeightedSum)
	useCores := false
	for _, st := range strategies {
		if st == core.OrderStatic || st == core.OrderDynamic {
			useCores = true
		}
	}
	res.BaseTelemetry.SetMetrics(s.cfg.Metrics, string(QueryBase))
	res.StepTelemetry.SetMetrics(s.cfg.Metrics, string(QueryStep))
	baseMetrics := make([]*sat.Metrics, len(strategies))
	stepMetrics := make([]*sat.Metrics, len(strategies))
	for i, st := range strategies {
		baseMetrics[i] = s.solverMetrics(QueryBase, st.String())
		stepMetrics[i] = s.solverMetrics(QueryStep, st.String())
	}

	for k := 0; k <= s.cfg.MaxDepth; k++ {
		if ctx.Err() != nil {
			return res, nil
		}
		res.K = k
		depthStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryBase, K: k})
		s.emit(Event{Kind: DepthStarted, Query: QueryStep, K: k})
		baseSpan := s.beginDepth(QueryBase, k)
		stepSpan := s.beginDepth(QueryStep, k)

		base := u.Formula(k)
		step := unroll.StepFormula(u, k)
		encodeWall := time.Since(depthStart)

		// The two queries race in parallel; a base verdict that makes the
		// step moot — SAT falsifies outright, undecided ends the attempt —
		// cancels the step race so it stops burning cores on a moot
		// question.
		stopStep, cancelStep, release := stepStopper(ctx)
		var stepRace portfolio.RaceResult
		var stepRecs []*core.Recorder
		stepDone := make(chan struct{})
		go func() {
			defer close(stepDone)
			stepRace, stepRecs = s.raceKindQuery(ctx, QueryStep, u, step, strategies, stepBoard, k, k+2, useCores, stopStep, stepMetrics)
		}()
		baseRace, baseRecs := s.raceKindQuery(ctx, QueryBase, u, base, strategies, baseBoard, k, k+1, useCores, ctx.Done(), baseMetrics)
		stepMoot := baseRace.Winner < 0 || baseRace.Result.Status != sat.Unsat
		if stepMoot {
			cancelStep()
		}
		<-stepDone
		release()

		res.BaseTelemetry.Observe(k, &baseRace)
		if stepMoot {
			// A deliberately-cancelled race is no evidence about any
			// strategy; folding it into Observe would count every racer as
			// a loser and skew the win rates.
			res.StepTelemetry.ObserveAborted(k, &stepRace)
		} else {
			res.StepTelemetry.Observe(k, &stepRace)
		}
		if baseRace.Winner >= 0 {
			res.BaseStats.Add(baseRace.Result.Stats)
		}
		if stepRace.Winner >= 0 {
			res.StepStats.Add(stepRace.Result.Stats)
		}
		s.observeRace(QueryBase, k, &baseRace)
		s.observeRace(QueryStep, k, &stepRace)
		baseDS := kindRaceStats(k, &baseRace, depthStart)
		baseDS.EncodeWall, baseDS.SolveWall = encodeWall, baseRace.Wall
		stepDS := kindRaceStats(k, &stepRace, depthStart)
		stepDS.SolveWall = stepRace.Wall
		s.finishDepth(baseSpan, QueryBase, &baseDS)
		s.finishDepth(stepSpan, QueryStep, &stepDS)

		// Base case first: a counter-example ends everything; an
		// undecided base (budget or cancellation) ends the attempt as
		// Unknown.
		if baseRace.Winner < 0 {
			return res, nil
		}
		switch baseRace.Result.Status {
		case sat.Sat:
			res.Verdict = Falsified
			res.Trace = u.ExtractTrace(baseRace.Result.Model, k)
			if !s.cfg.SkipTraceVerification && !u.Replay(res.Trace) {
				return nil, fmt.Errorf("engine: depth-%d portfolio counter-example (winner %s) failed replay",
					k, baseRace.WinnerName())
			}
			return res, nil
		case sat.Unsat:
			foldKindCore(baseBoard, baseRecs, &baseRace, base, k, useCores)
		default:
			// Unknown/Interrupted with a nominal winner: the base case
			// is undecided, so running the step query would prove
			// nothing — end the attempt with the Unknown verdict.
			return res, nil
		}

		// Step case: UNSAT closes the proof.
		if stepRace.Winner < 0 {
			return res, nil
		}
		if stepRace.Result.Status == sat.Unsat {
			res.Verdict = Proved
			foldKindCore(stepBoard, stepRecs, &stepRace, step, k, useCores)
			return res, nil
		}
	}
	res.K = s.cfg.MaxDepth
	return res, nil
}

// kindRaceStats summarizes one query's race as a DepthStats for the
// progress stream (undecided races report status Unknown, no winner).
func kindRaceStats(k int, race *portfolio.RaceResult, start time.Time) DepthStats {
	ds := DepthStats{K: k, Status: sat.Unknown, Winner: race.WinnerName(), Wall: time.Since(start)}
	if race.Winner >= 0 {
		ds.Status = race.Result.Status
		ds.Stats = race.Result.Stats
	}
	return ds
}

// raceKindQuery races one query formula across the strategy set, one
// fully configured attempt per strategy. frames is the number of time
// frames the instance spans (k+1 for base, k+2 for step) — the timeaxis
// racers' guidance prefers earlier frames and leaves the step encoding's
// auxiliary disequality variables unscored.
func (s *Session) raceKindQuery(ctx context.Context, query Query, u *unroll.Unroller, f *cnf.Formula, strategies portfolio.StrategySet,
	board *core.ScoreBoard, k, frames int, useCores bool, stop <-chan struct{}, metrics []*sat.Metrics) (portfolio.RaceResult, []*core.Recorder) {
	attempts := make([]portfolio.Attempt, len(strategies))
	recs := make([]*core.Recorder, len(strategies))
	for i, st := range strategies {
		so := s.solverBase(ctx)
		so.Metrics = metrics[i]
		if st == core.OrderTimeAxis {
			so.Guidance = frameGuidance(u, frames, f.NumVars)
		} else {
			st.Configure(&so, board, f)
		}
		if useCores {
			recs[i] = core.NewRecorder(f.NumClauses())
			so.Recorder = recs[i]
		}
		attempts[i] = portfolio.Attempt{Name: st.String(), Opts: so}
	}
	return s.executor().Race(query, f, attempts, s.cfg.Jobs, stop), recs
}

// foldKindCore feeds the winning racer's unsat core into the query's
// board.
func foldKindCore(board *core.ScoreBoard, recs []*core.Recorder, race *portfolio.RaceResult, f *cnf.Formula, k int, useCores bool) {
	if !useCores || race.Winner < 0 {
		return
	}
	if rec := recs[race.Winner]; rec != nil && rec.HasProof() {
		board.Update(rec.CoreVars(f), k+1)
	}
}

// frameGuidance builds the Shtrichman-style time-axis scores for an
// instance spanning the given number of frames: variables of frame 0
// score highest, later frames lower, and variables past the unroller's
// frame-stable range (the step encoding's disequality auxiliaries) score
// zero.
func frameGuidance(u *unroll.Unroller, frames, nVars int) []float64 {
	g := make([]float64, nVars+1)
	framed := u.NumVars(frames - 1)
	for v := 1; v <= nVars && v <= framed; v++ {
		_, frame := u.NodeOf(lits.Var(v))
		g[v] = float64(frames - frame)
	}
	return g
}

// runKindWarm keeps two persistent racer pools alive across the whole
// proof attempt — one over the base-query sequence, one over the
// step-query sequence (legacy induction.ProvePortfolioIncremental). A
// single-ordering incremental session runs the same machinery with a
// one-strategy set (and no bus — there is nobody to share with).
func (s *Session) runKindWarm(ctx context.Context, u *unroll.Unroller) (*Result, error) {
	d := u.Delta()
	// Both sequences spend stretches hunting models (every step instance
	// below the closing depth is SAT; the base instance at a failure
	// depth is SAT), where a full-mesh bus can converge all racers onto
	// the same wrong turn. Keep one racer import-free as the diversity
	// reserve on whichever bus is on.
	baseEx := s.cfg.Exchange
	baseEx.ReserveFirst = true
	stepEx := s.cfg.StepExchange
	stepEx.ReserveFirst = true
	baseCfg := s.poolConfig(ctx, QueryBase, baseEx)
	stepCfg := s.poolConfig(ctx, QueryStep, stepEx)
	// The k-induction boards always accumulate WeightedSum, and the
	// legacy warm pools never forwarded ScoreMode/ForceRecording; keep
	// that behavior for equivalence.
	baseCfg.ScoreMode, stepCfg.ScoreMode = core.WeightedSum, core.WeightedSum
	baseCfg.ForceRecording, stepCfg.ForceRecording = false, false
	if !s.cfg.Portfolio {
		set := portfolio.StrategySet{s.cfg.Ordering}
		baseCfg.Strategies, stepCfg.Strategies = set, set
	}
	d.SetMetrics(s.unrollMetrics(QueryBase))
	sd := u.StepDelta()
	sd.SetMetrics(s.unrollMetrics(QueryStep))
	basePool := racer.NewPool(racer.DeltaSource(d), baseCfg)
	stepPool := racer.NewPool(racer.StepSource(sd), stepCfg)
	res := kindResult()
	res.BaseTelemetry = portfolio.NewTelemetry()
	res.StepTelemetry = portfolio.NewTelemetry()
	res.BaseTelemetry.SetMetrics(s.cfg.Metrics, string(QueryBase))
	res.StepTelemetry.SetMetrics(s.cfg.Metrics, string(QueryStep))
	res.Strategies = basePool.Strategies()
	res.Jobs = s.cfg.Jobs
	res.Warm = true

	for k := 0; k <= s.cfg.MaxDepth; k++ {
		if ctx.Err() != nil {
			return res, nil
		}
		res.K = k
		depthStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryBase, K: k})
		s.emit(Event{Kind: DepthStarted, Query: QueryStep, K: k})
		baseSpan := s.beginDepth(QueryBase, k)
		stepSpan := s.beginDepth(QueryStep, k)

		// The two pools race in parallel; a base verdict that makes the
		// step moot closes the stop channel so the step racers come to
		// rest instead of burning their full budgets (their conflicts are
		// kept — the pool's clause bus and warm state survive
		// cancellation).
		stopStep, cancelStep, release := stepStopper(ctx)
		var stepOut racer.DepthOutcome
		stepDone := make(chan struct{})
		go func() {
			defer close(stepDone)
			stepOut = stepPool.RaceDepthStop(k, stopStep)
		}()
		baseOut := basePool.RaceDepthStop(k, ctx.Done())
		baseRace := &baseOut.Race
		stepMoot := baseRace.Winner < 0 || baseRace.Result.Status != sat.Unsat
		if stepMoot {
			cancelStep()
		}
		<-stepDone
		release()
		stepRace := &stepOut.Race

		res.BaseTelemetry.Observe(k, baseRace)
		res.BaseTelemetry.ObserveExchange(baseOut.Exported, baseOut.Imported, baseOut.DedupDropped, baseOut.WinnerWarm, baseOut.WinnerShared)
		if stepMoot {
			// Bus traffic is real even on an aborted depth, but the race
			// itself carries no win/loss signal.
			res.StepTelemetry.ObserveAborted(k, stepRace)
			res.StepTelemetry.ObserveExchange(stepOut.Exported, stepOut.Imported, stepOut.DedupDropped, false, false)
		} else {
			res.StepTelemetry.Observe(k, stepRace)
			res.StepTelemetry.ObserveExchange(stepOut.Exported, stepOut.Imported, stepOut.DedupDropped, stepOut.WinnerWarm, stepOut.WinnerShared)
		}
		if baseRace.Winner >= 0 {
			res.BaseStats.Add(baseRace.Result.Stats)
		}
		if stepRace.Winner >= 0 {
			res.StepStats.Add(stepRace.Result.Stats)
		}
		s.observeRace(QueryBase, k, baseRace)
		s.observeRace(QueryStep, k, stepRace)
		s.observeExchange(QueryBase, k, &baseOut)
		s.observeExchange(QueryStep, k, &stepOut)
		baseDS := kindRaceStats(k, baseRace, depthStart)
		baseDS.EncodeWall, baseDS.SolveWall = baseOut.EncodeWall, baseRace.Wall
		stepDS := kindRaceStats(k, stepRace, depthStart)
		stepDS.EncodeWall, stepDS.SolveWall = stepOut.EncodeWall, stepRace.Wall
		s.finishDepth(baseSpan, QueryBase, &baseDS)
		s.finishDepth(stepSpan, QueryStep, &stepDS)

		// Base case first: a counter-example ends everything; an
		// undecided base (budget or cancellation) ends the attempt as
		// Unknown.
		if baseRace.Winner < 0 {
			return res, nil
		}
		if baseRace.Result.Status == sat.Sat {
			res.Verdict = Falsified
			res.Trace = d.ExtractTrace(baseRace.Result.Model, k)
			if !s.cfg.SkipTraceVerification && !u.Replay(res.Trace) {
				return nil, fmt.Errorf("engine: depth-%d warm-portfolio counter-example (winner %s) failed replay",
					k, baseRace.WinnerName())
			}
			return res, nil
		}

		// Base UNSAT: the step verdict decides. (Winner cores were
		// already folded into each pool's own board by RaceDepthStop.)
		if stepRace.Winner < 0 {
			return res, nil
		}
		if stepRace.Result.Status == sat.Unsat {
			res.Verdict = Proved
			return res, nil
		}
	}
	return res, nil
}
