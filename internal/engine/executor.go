package engine

import (
	"repro/internal/cnf"
	"repro/internal/lits"
	"repro/internal/portfolio"
)

// Executor is the session's execution seam: every race a Session runs —
// cold (throwaway solvers over one formula) or live (the warm pool's
// persistent solvers under an assumption) — is submitted through this
// interface, and every depth-boundary clause-bus payload flows through
// its hook. LocalExecutor wraps today's in-process goroutine pool; a
// remote executor (gRPC or plain TCP workers racing the same CNF, the
// ROADMAP's distributed-portfolio direction) implements the same three
// methods: ship the attempts out, report the first verdict back, cancel
// the rest when stop closes, and forward the clause payloads — plain
// literal slices, the designed wire format — to its workers.
//
// Implementations must preserve the first-verdict-wins contract of
// portfolio.Race/RaceLive: the returned RaceResult carries the first
// Sat/Unsat verdict (Winner == -1 when none landed), and once stop is
// closed the call returns promptly with every attempt at rest.
type Executor interface {
	// Race runs a cold race: one throwaway solver per attempt, all
	// solving formula f, at most jobs concurrently (jobs <= 0 means one
	// per attempt).
	Race(f *cnf.Formula, attempts []portfolio.Attempt, jobs int, stop <-chan struct{}) portfolio.RaceResult
	// RaceLive races caller-owned persistent solvers on an assumption
	// list; the solvers' clause databases and heuristic state survive
	// the race (the warm pool's per-depth race).
	RaceLive(attempts []portfolio.LiveAttempt, assumps []lits.Lit, jobs int, stop <-chan struct{}) portfolio.RaceResult
	// OnClausePayload observes one racer's exported clause-bus payload at
	// a depth boundary: query names the instance sequence (bmc, base,
	// step), k the depth, from the exporting strategy. Local execution
	// redistributes in-process and needs nothing here; a remote executor
	// forwards the payload to its workers. The clauses must not be
	// mutated.
	OnClausePayload(query Query, k int, from string, clauses []cnf.Clause)
}

// LocalExecutor runs races on the in-process goroutine pool
// (portfolio.Race / portfolio.RaceLive). It is the only code path that
// constructs racer goroutines; every engine configuration routes through
// it unless WithExecutor installs a replacement.
type LocalExecutor struct{}

// Race implements Executor with portfolio.Race.
func (LocalExecutor) Race(f *cnf.Formula, attempts []portfolio.Attempt, jobs int, stop <-chan struct{}) portfolio.RaceResult {
	return portfolio.Race(f, attempts, jobs, stop)
}

// RaceLive implements Executor with portfolio.RaceLive.
func (LocalExecutor) RaceLive(attempts []portfolio.LiveAttempt, assumps []lits.Lit, jobs int, stop <-chan struct{}) portfolio.RaceResult {
	return portfolio.RaceLive(attempts, assumps, jobs, stop)
}

// OnClausePayload is a no-op: the local clause bus redistributes
// in-process immediately after exporting.
func (LocalExecutor) OnClausePayload(Query, int, string, []cnf.Clause) {}
