package engine

import (
	"repro/internal/cnf"
	"repro/internal/lits"
	"repro/internal/portfolio"
)

// Executor is the session's execution seam: every race a Session runs —
// cold (throwaway solvers over one formula) or live (the warm pool's
// persistent solvers under an assumption) — is submitted through this
// interface, and every depth-boundary clause-bus payload flows through
// its hook. LocalExecutor wraps the in-process goroutine pool;
// remote.Executor (internal/remote) fans the same calls out across a
// fleet of bmcworker daemons over TCP. Both are installed through
// WithExecutor and observed through the same session API, so the depth
// loops never know where their solvers actually run.
//
// # The contract, method by method
//
// Race runs a cold race: one throwaway solver per attempt, all solving
// the same formula f, at most jobs concurrently (jobs <= 0 means one
// per attempt). The attempts' sat.Options carry everything a solver
// needs (guidance, budgets, deadline, recorder); f and the options are
// owned by the caller and must not be mutated. query labels which
// instance sequence the race belongs to (bmc, base, step) — pure
// routing/telemetry context, it does not change the formula.
//
// RaceLive races caller-owned persistent solvers on an assumption list;
// the solvers' clause databases and heuristic state survive the race
// (the warm pool's per-depth race). The solvers are single-threaded:
// the executor may drive each one from at most one goroutine at a time,
// and when the call returns every solver must be at rest — the caller
// immediately runs depth-boundary work (clause exchange, core folding)
// on them. An implementation that executes attempts elsewhere (remote
// mirrors) may leave the local solvers untouched, but must still return
// outcomes indexed exactly like the attempts slice.
//
// Both race methods block until the race is settled. They return the
// first Sat/Unsat verdict in RaceResult.Result with Winner set to the
// deciding attempt's index, or Winner == -1 when no attempt reached a
// verdict (budgets exhausted, or stop closed first). When stop closes,
// the implementation must cancel outstanding attempts cooperatively and
// return promptly — bounded by the solvers' stop-poll interval, not by
// the remaining search — with every attempt at rest. Closing stop is
// the caller's only cancellation channel; implementations must never
// require a second call to unwind a race.
//
// OnClausePayload observes one racer's exported clause-bus payload at a
// depth boundary: query names the instance sequence, k the depth, from
// the exporting strategy. The pool has already redistributed the
// payload locally; the hook exists so a distributing executor can
// forward it to its workers (the clauses are plain literal slices — the
// designed wire format). The payload is shared with the local
// importing side: implementations may retain the slices but must not
// mutate them. The hook is called between races (solvers at rest) and
// should return quickly; slow transports must buffer internally.
//
// # Concurrency
//
// The k-induction engine races its base and step queries in parallel:
// implementations must accept concurrent Race/RaceLive calls (they are
// always for distinct queries) and concurrent OnClausePayload calls.
type Executor interface {
	Race(query Query, f *cnf.Formula, attempts []portfolio.Attempt, jobs int, stop <-chan struct{}) portfolio.RaceResult
	RaceLive(query Query, attempts []portfolio.LiveAttempt, assumps []lits.Lit, jobs int, stop <-chan struct{}) portfolio.RaceResult
	OnClausePayload(query Query, k int, from string, clauses []cnf.Clause)
}

// FrameSink is an optional Executor extension for implementations that
// mirror the warm pools' solver state elsewhere. When the configured
// executor implements it, the session reports every unrolled frame —
// query, depth, and the frame's delta formula — right after the local
// pool has fed it to its own solvers and before the depth's RaceLive
// call. The frame is owned by the pool and must not be mutated; an
// implementation may retain it (remote.Executor replays retained frames
// to reconnecting workers, whose mirrors restart empty).
type FrameSink interface {
	OnFrame(query Query, k int, frame *cnf.Formula)
}

// LocalExecutor runs races on the in-process goroutine pool
// (portfolio.Race / portfolio.RaceLive). It is the default and the only
// code path that constructs racer goroutines in-process; every engine
// configuration routes through it unless WithExecutor installs a
// replacement.
type LocalExecutor struct{}

// Race implements Executor with portfolio.Race.
func (LocalExecutor) Race(_ Query, f *cnf.Formula, attempts []portfolio.Attempt, jobs int, stop <-chan struct{}) portfolio.RaceResult {
	return portfolio.Race(f, attempts, jobs, stop)
}

// RaceLive implements Executor with portfolio.RaceLive.
func (LocalExecutor) RaceLive(_ Query, attempts []portfolio.LiveAttempt, assumps []lits.Lit, jobs int, stop <-chan struct{}) portfolio.RaceResult {
	return portfolio.RaceLive(attempts, assumps, jobs, stop)
}

// OnClausePayload is a no-op: the local clause bus redistributes
// in-process immediately after exporting.
func (LocalExecutor) OnClausePayload(Query, int, string, []cnf.Clause) {}
