package engine_test

import (
	"context"
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/racer"
)

// Example model-checks a small counter circuit through the session API:
// one entrypoint covers every engine×ordering×incremental×sharing
// configuration, and the context carries cancellation and deadlines into
// every solver.
func Example() {
	// A 4-bit counter that saturates at 9; the property "counter never
	// reaches 9" is falsified by a 9-step trace.
	c := circuit.New("example")
	cnt := c.LatchWord("cnt", 4, 0)
	inc, _ := c.IncWord(cnt)
	at9 := c.EqConst(cnt, 9)
	c.SetNextWord(cnt, c.MuxWord(at9, cnt, inc))
	c.AddProperty("never_9", at9)

	sess, err := engine.New(c, 0,
		engine.WithPortfolio(nil, 0), // race all four orderings per depth
		engine.WithIncremental(),     // persistent solvers across depths
		engine.WithExchange(racer.ExchangeOptions{Enabled: true}),
		engine.WithBudgets(12, 0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Check(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v at depth %d (warm portfolio: %v)\n", res.Verdict, res.K, res.Warm)
	// Output: falsified at depth 9 (warm portfolio: true)
}
