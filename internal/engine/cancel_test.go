package engine_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/racer"
)

// cancelConfigs covers every engine×incremental×portfolio shape whose
// cancellation path differs. Each names the suite model that keeps that
// engine busy for seconds: a holding parity mixer at a deep bound for
// BMC, the deep counter (k-induction needs ~3s to reach its k=24
// counter-example) for the induction engines.
func cancelConfigs() []struct {
	name  string
	model string
	opts  []engine.Option
} {
	exchange := engine.WithExchange(racer.ExchangeOptions{Enabled: true})
	return []struct {
		name  string
		model string
		opts  []engine.Option
	}{
		{"bmc-scratch", "mix_w8", nil},
		{"bmc-incremental", "mix_w8", []engine.Option{engine.WithIncremental()}},
		{"bmc-portfolio", "mix_w8", []engine.Option{engine.WithPortfolio(nil, 0)}},
		{"bmc-warm", "mix_w8", []engine.Option{engine.WithPortfolio(nil, 0), engine.WithIncremental(), exchange}},
		{"kind-sequential", "cnt_w6_t24", []engine.Option{engine.WithEngine(engine.KInduction)}},
		{"kind-portfolio", "cnt_w6_t24", []engine.Option{engine.WithEngine(engine.KInduction), engine.WithPortfolio(nil, 0)}},
		{"kind-warm", "cnt_w6_t24", []engine.Option{engine.WithEngine(engine.KInduction), engine.WithPortfolio(nil, 0),
			engine.WithIncremental(), exchange}},
	}
}

// TestCheckContextCancellation: cancelling a running check mid-race must
// return promptly — bounded by the solver's cooperative stop poll, not
// by the remaining search — with Verdict Unknown, and must not leak the
// race's goroutines. Run under -race in CI, this also asserts the
// cancellation paths are data-race-free.
func TestCheckContextCancellation(t *testing.T) {
	for _, tc := range cancelConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			m, ok := bench.ByName(tc.model)
			if !ok {
				t.Fatalf("model %s missing", tc.model)
			}
			before := runtime.NumGoroutine()
			opts := append([]engine.Option{engine.WithBudgets(60, 0)}, tc.opts...)
			sess, err := engine.New(m.Build(), 0, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			type outcome struct {
				res *engine.Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := sess.Check(ctx)
				done <- outcome{res, err}
			}()
			// Let the check get into real work before pulling the plug.
			time.Sleep(100 * time.Millisecond)
			cancel()
			select {
			case o := <-done:
				if o.err != nil {
					t.Fatalf("Check returned error on cancellation: %v", o.err)
				}
				if o.res.Verdict != engine.Unknown {
					t.Errorf("verdict %v after cancellation, want unknown", o.res.Verdict)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Check did not return within 5s of cancellation")
			}
			// Goroutine accounting is eventually consistent (worker
			// goroutines observe the cancel at their next poll); allow a
			// grace period before declaring a leak.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if runtime.NumGoroutine() <= before {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked after cancellation: %d before, %d after",
						before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestCheckContextDeadline: an already-expired deadline returns Unknown
// immediately without touching a solver.
func TestCheckContextDeadline(t *testing.T) {
	for _, tc := range cancelConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			m, ok := bench.ByName(tc.model)
			if !ok {
				t.Fatalf("model %s missing", tc.model)
			}
			opts := append([]engine.Option{engine.WithBudgets(20, 0)}, tc.opts...)
			sess, err := engine.New(m.Build(), 0, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer cancel()
			start := time.Now()
			res, err := sess.Check(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != engine.Unknown {
				t.Errorf("verdict %v under an expired deadline, want unknown", res.Verdict)
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Errorf("expired-deadline check took %v, want immediate return", elapsed)
			}
		})
	}
}
