package engine

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/unroll"
)

// TestFrameGuidanceLeavesStepAuxUnscored: the cold portfolio's time-axis
// guidance must score circuit variables by frame and leave the step
// encoding's disequality auxiliaries (allocated past the frame-stable
// range) at zero — branching on helper variables first would defeat the
// Shtrichman ordering.
func TestFrameGuidanceLeavesStepAuxUnscored(t *testing.T) {
	u, err := unroll.New(bench.Twin(4, 0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	f := unroll.StepFormula(u, k)
	if f.NumVars <= u.NumVars(k+1) {
		t.Fatalf("step formula has no aux variables: %d <= %d", f.NumVars, u.NumVars(k+1))
	}
	g := frameGuidance(u, k+2, f.NumVars)
	if len(g) != f.NumVars+1 {
		t.Fatalf("guidance length %d, want %d", len(g), f.NumVars+1)
	}
	for v := u.NumVars(k+1) + 1; v <= f.NumVars; v++ {
		if g[v] != 0 {
			t.Fatalf("aux var %d scored %v, want 0", v, g[v])
		}
	}
	// Circuit variables score by frame, earlier frames strictly higher.
	v0 := int(u.VarFor(u.Circuit().Latches()[0], 0))
	v3 := int(u.VarFor(u.Circuit().Latches()[0], k+1))
	if g[v0] <= g[v3] || g[v3] <= 0 {
		t.Fatalf("frame scores not decreasing: frame0=%v frame%d=%v", g[v0], k+1, g[v3])
	}
}
