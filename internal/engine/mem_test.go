package engine_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/obs"
)

// TestMemoryTelemetry: an instrumented session must surface the mem_*
// gauges in Result.Metrics, stamp the memory columns on every PerDepth
// row and on the Result, and publish the solver clause-database gauges;
// an un-instrumented session must leave all of it at zero.
func TestMemoryTelemetry(t *testing.T) {
	m, ok := bench.ByName("cnt_w4_t9")
	if !ok {
		t.Fatal("model cnt_w4_t9 missing")
	}

	reg := obs.NewRegistry()
	sess, err := engine.New(m.Build(), 0,
		engine.WithBudgets(m.MaxDepth, 0), engine.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != engine.Falsified {
		t.Fatalf("verdict = %v, want falsified", res.Verdict)
	}
	if res.HeapAllocBytes <= 0 || res.TotalAllocBytes <= 0 {
		t.Errorf("result memory columns not stamped: heap=%d total=%d",
			res.HeapAllocBytes, res.TotalAllocBytes)
	}
	if len(res.PerDepth) == 0 {
		t.Fatal("no per-depth rows")
	}
	for _, ds := range res.PerDepth {
		if ds.HeapAllocBytes <= 0 || ds.TotalAllocBytes <= 0 {
			t.Errorf("depth %d memory columns not stamped: heap=%d total=%d",
				ds.K, ds.HeapAllocBytes, ds.TotalAllocBytes)
		}
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics missing")
	}
	for _, want := range []string{"mem_heap_alloc", "mem_total_alloc", "mem_gc_count"} {
		if _, ok := res.Metrics.Gauges[want]; !ok {
			t.Errorf("gauge %s missing from Result.Metrics", want)
		}
	}
	foundClauses := false
	for name := range res.Metrics.Gauges {
		if strings.HasPrefix(name, "solver_clauses_bytes_est{") {
			foundClauses = true
		}
	}
	if !foundClauses {
		t.Errorf("no solver_clauses_bytes_est series in Result.Metrics gauges: %v",
			res.Metrics.Gauges)
	}

	// Off must be free: no registry, no memory sampling.
	plain, err := engine.New(m.Build(), 0, engine.WithBudgets(m.MaxDepth, 0))
	if err != nil {
		t.Fatal(err)
	}
	pres, err := plain.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pres.HeapAllocBytes != 0 || pres.TotalAllocBytes != 0 || pres.GCCount != 0 {
		t.Errorf("un-instrumented result carries memory columns: %+v", pres)
	}
	for _, ds := range pres.PerDepth {
		if ds.HeapAllocBytes != 0 {
			t.Errorf("un-instrumented depth %d carries memory columns", ds.K)
		}
	}
}
