package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lits"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// The four BMC depth loops (scratch, incremental, cold portfolio, warm
// portfolio pool), ported from the legacy bmc.Run* entrypoints. The
// bespoke per-loop deadline arithmetic is gone: cancellation and
// deadlines arrive through ctx (checked once per depth here, polled
// inside every solver via sat.Options.Stop/Deadline from solverBase).

// divisor resolves the dynamic strategy's switch divisor.
func (s *Session) divisor() int {
	if s.cfg.SwitchDivisor != 0 {
		return s.cfg.SwitchDivisor
	}
	return core.SwitchDivisor
}

// useCores reports whether any configured strategy consumes unsat cores
// (static/dynamic), which decides whether proof recording is attached.
func (s *Session) useCores(strategies portfolio.StrategySet) bool {
	if s.cfg.ForceRecording {
		return true
	}
	if s.cfg.Portfolio {
		for _, st := range strategies {
			if st == core.OrderStatic || st == core.OrderDynamic {
				return true
			}
		}
		return false
	}
	return s.cfg.Ordering == core.OrderStatic || s.cfg.Ordering == core.OrderDynamic
}

// strategySet resolves the portfolio's raced set (default four-way).
func (s *Session) strategySet() portfolio.StrategySet {
	if len(s.cfg.Strategies) > 0 {
		return s.cfg.Strategies
	}
	return portfolio.DefaultSet()
}

// configureStrategy applies one ordering strategy to solver options for
// the scratch depth-k instance: guidance scores (from the shared score
// board, or frame numbers for timeaxis) and the dynamic switch threshold.
func configureStrategy(so *sat.Options, st core.Strategy, board *core.ScoreBoard, f *cnf.Formula, u *unroll.Unroller, k, divisor int) {
	if st == core.OrderTimeAxis {
		so.Guidance = timeAxisGuidance(u, k, f.NumVars)
		so.SwitchAfterDecisions = 0
		return
	}
	st.ConfigureWithDivisor(so, board, f, divisor)
}

// timeAxisGuidance builds a per-variable score preferring earlier frames
// (frame 0 scored highest), approximating Shtrichman's time-axis
// ordering.
func timeAxisGuidance(u *unroll.Unroller, k, nVars int) []float64 {
	g := make([]float64, nVars+1)
	for v := 1; v <= nVars; v++ {
		_, frame := u.NodeOf(lits.Var(v))
		g[v] = float64(k + 1 - frame)
	}
	return g
}

// runBMCScratch is the sequential paper loop: every depth's unrolling is
// built and solved from scratch (legacy bmc.Run).
func (s *Session) runBMCScratch(ctx context.Context, u *unroll.Unroller) (*Result, error) {
	board := core.NewScoreBoard(s.cfg.ScoreMode)
	res := &Result{Verdict: Holds, K: -1}
	useCores := s.cfg.Ordering == core.OrderStatic || s.cfg.Ordering == core.OrderDynamic
	divisor := s.divisor()
	metrics := s.solverMetrics(QueryBMC, s.cfg.Ordering.String())

	for k := 0; k <= s.cfg.MaxDepth; k++ {
		if ctx.Err() != nil {
			res.Verdict = Unknown
			res.K = k
			break
		}
		depthStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryBMC, K: k})
		sp := s.beginDepth(QueryBMC, k)
		f := u.Formula(k)
		encodeWall := time.Since(depthStart)

		solverOpts := s.solverBase(ctx)
		solverOpts.Metrics = metrics
		configureStrategy(&solverOpts, s.cfg.Ordering, board, f, u, k, divisor)

		var rec *core.Recorder
		if useCores || s.cfg.ForceRecording {
			rec = core.NewRecorder(f.NumClauses())
			solverOpts.Recorder = rec
		}

		r := sat.New(f, solverOpts).Solve()
		ds := DepthStats{
			K:              k,
			Status:         r.Status,
			Stats:          r.Stats,
			EncodeWall:     encodeWall,
			SolveWall:      r.Stats.SolveTime,
			FormulaVars:    f.NumVars,
			FormulaClauses: f.NumClauses(),
			FormulaLits:    f.NumLiterals(),
		}
		res.Total.Add(r.Stats)

		switch r.Status {
		case sat.Sat:
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Falsified
			res.K = k
			res.Trace = u.ExtractTrace(r.Model, k)
			if !s.cfg.SkipTraceVerification && !u.Replay(res.Trace) {
				return nil, fmt.Errorf("engine: depth-%d counter-example failed replay on %s", k, s.circ.Name())
			}
			return res, nil
		case sat.Unsat:
			if rec != nil {
				coreIDs := rec.Core()
				coreVars := rec.CoreVars(f)
				ds.CoreClauses = len(coreIDs)
				ds.CoreVars = len(coreVars)
				ds.RecorderBytes = rec.ApproxBytes()
				if useCores {
					// update_ranking: weight by the 1-based instance
					// number (the paper's j).
					board.Update(coreVars, k+1)
				}
			}
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.K = k
		default: // Unknown/Interrupted: budget exhausted or cancelled mid-instance
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Unknown
			res.K = k
			return res, nil
		}
	}
	return res, nil
}

// runBMCIncremental keeps one live solver across the whole depth loop
// (legacy bmc.RunIncremental): each depth adds only the new frame's
// clauses and solves under the depth's activation-literal assumption, so
// learned clauses, VSIDS scores, and saved phases compound across depths.
func (s *Session) runBMCIncremental(ctx context.Context, u *unroll.Unroller) (*Result, error) {
	d := u.Delta()
	board := core.NewScoreBoard(s.cfg.ScoreMode)
	res := &Result{Verdict: Holds, K: -1}
	useCores := s.cfg.Ordering == core.OrderStatic || s.cfg.Ordering == core.OrderDynamic
	divisor := s.divisor()

	d.SetMetrics(s.unrollMetrics(QueryBMC))
	solverOpts := s.solverBase(ctx)
	solverOpts.Metrics = s.solverMetrics(QueryBMC, s.cfg.Ordering.String())
	var rec *core.IncrementalRecorder
	if useCores || s.cfg.ForceRecording {
		rec = core.NewIncrementalRecorder()
		solverOpts.Recorder = rec
	}

	solver := sat.New(cnf.New(0), solverOpts)
	src := racer.DeltaSource(d)
	// clausesByID maps original-clause proof IDs back to literals for
	// core extraction (the incremental analogue of indexing f.Clauses).
	clausesByID := make(map[sat.ClauseID]cnf.Clause)
	totalClauses, totalLits := 0, 0

	for k := 0; k <= s.cfg.MaxDepth; k++ {
		if ctx.Err() != nil {
			res.Verdict = Unknown
			res.K = k
			break
		}
		depthStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryBMC, K: k})
		sp := s.beginDepth(QueryBMC, k)
		frame := d.Frame(k)
		solver.AddVars(frame.NumVars)
		for _, cl := range frame.Clauses {
			id := solver.AddClause(cl)
			if rec != nil {
				clausesByID[id] = cl
			}
			totalLits += len(cl)
		}
		totalClauses += frame.NumClauses()
		encodeWall := time.Since(depthStart)

		racer.ApplyStrategy(solver, s.cfg.Ordering, board, src, k, totalLits, divisor)

		r := solver.SolveAssuming([]lits.Lit{d.ActLit(k)})
		ds := DepthStats{
			K:              k,
			Status:         r.Status,
			Stats:          r.Stats,
			EncodeWall:     encodeWall,
			SolveWall:      r.Stats.SolveTime,
			FormulaVars:    frame.NumVars,
			FormulaClauses: totalClauses,
			FormulaLits:    totalLits,
		}
		res.Total.Add(r.Stats)

		switch r.Status {
		case sat.Sat:
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Falsified
			res.K = k
			res.Trace = d.ExtractTrace(r.Model, k)
			if !s.cfg.SkipTraceVerification && !u.Replay(res.Trace) {
				return nil, fmt.Errorf("engine: incremental depth-%d counter-example failed replay on %s", k, s.circ.Name())
			}
			return res, nil
		case sat.Unsat:
			if rec != nil && rec.HasProof() {
				coreIDs := rec.Core()
				coreVars := racer.CoreVars(src, coreIDs, clausesByID, frame.NumVars)
				ds.CoreClauses = len(coreIDs)
				ds.CoreVars = len(coreVars)
				ds.RecorderBytes = rec.ApproxBytes()
				if useCores {
					board.Update(coreVars, k+1)
				}
				rec.ResetFinal()
			}
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.K = k
		default: // Unknown/Interrupted
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Unknown
			res.K = k
			return res, nil
		}
	}
	return res, nil
}

// runBMCPortfolio races one throwaway solver per strategy at every depth
// (legacy bmc.RunPortfolio); races go through the configured Executor.
func (s *Session) runBMCPortfolio(ctx context.Context, u *unroll.Unroller) (*Result, error) {
	strategies := s.strategySet()
	exec := s.executor()
	board := core.NewScoreBoard(s.cfg.ScoreMode)
	res := &Result{
		Verdict:    Holds,
		K:          -1,
		Telemetry:  portfolio.NewTelemetry(),
		Strategies: strategies.Names(),
		Jobs:       s.cfg.Jobs,
	}
	divisor := s.divisor()
	// Proof recording (and the shared board it feeds) only pays off when
	// some racer will consume the scores at the next depth.
	useCores := s.useCores(strategies)
	res.Telemetry.SetMetrics(s.cfg.Metrics, string(QueryBMC))
	metrics := make([]*sat.Metrics, len(strategies))
	for i, st := range strategies {
		metrics[i] = s.solverMetrics(QueryBMC, st.String())
	}

	for k := 0; k <= s.cfg.MaxDepth; k++ {
		if ctx.Err() != nil {
			res.Verdict = Unknown
			res.K = k
			break
		}
		depthStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryBMC, K: k})
		sp := s.beginDepth(QueryBMC, k)
		f := u.Formula(k)
		encodeWall := time.Since(depthStart)

		// One fully configured attempt per strategy; when cores are in
		// play each gets its own recorder, so whichever racer wins has a
		// core to contribute.
		attempts := make([]portfolio.Attempt, len(strategies))
		recs := make([]*core.Recorder, len(strategies))
		for i, st := range strategies {
			solverOpts := s.solverBase(ctx)
			solverOpts.Metrics = metrics[i]
			configureStrategy(&solverOpts, st, board, f, u, k, divisor)
			if useCores {
				recs[i] = core.NewRecorder(f.NumClauses())
				solverOpts.Recorder = recs[i]
			}
			attempts[i] = portfolio.Attempt{Name: st.String(), Opts: solverOpts}
		}

		race := exec.Race(QueryBMC, f, attempts, s.cfg.Jobs, ctx.Done())
		res.Telemetry.Observe(k, &race)
		s.observeRace(QueryBMC, k, &race)

		ds := DepthStats{
			K:              k,
			Winner:         race.WinnerName(),
			EncodeWall:     encodeWall,
			SolveWall:      race.Wall,
			FormulaVars:    f.NumVars,
			FormulaClauses: f.NumClauses(),
			FormulaLits:    f.NumLiterals(),
		}
		if race.Winner < 0 {
			// Every racer exhausted its budget, or the race was cancelled.
			ds.Status = sat.Unknown
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Unknown
			res.K = k
			return res, nil
		}

		r := race.Result
		ds.Status = r.Status
		ds.Stats = r.Stats
		res.Total.Add(r.Stats)

		switch r.Status {
		case sat.Sat:
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Falsified
			res.K = k
			res.Trace = u.ExtractTrace(r.Model, k)
			if !s.cfg.SkipTraceVerification && !u.Replay(res.Trace) {
				return nil, fmt.Errorf("engine: depth-%d portfolio counter-example (winner %s) failed replay on %s",
					k, race.WinnerName(), s.circ.Name())
			}
			return res, nil
		case sat.Unsat:
			if rec := recs[race.Winner]; rec != nil {
				coreIDs := rec.Core()
				coreVars := rec.CoreVars(f)
				ds.CoreClauses = len(coreIDs)
				ds.CoreVars = len(coreVars)
				ds.RecorderBytes = rec.ApproxBytes()
				board.Update(coreVars, k+1)
			}
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.K = k
		default:
			// Unknown/Interrupted despite a nominal winner: this depth
			// is undecided, so deeper unrollings would be too — record
			// it and stop instead of silently continuing.
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			return res, nil
		}
	}
	return res, nil
}

// poolConfig translates the session config into a warm racer pool
// configuration, routing races and clause-bus payloads through the
// Executor seam. query labels the payloads for OnClausePayload.
func (s *Session) poolConfig(ctx context.Context, query Query, exchange racer.ExchangeOptions) racer.Config {
	exec := s.executor()
	exchange.OnExport = func(k int, from string, clauses []cnf.Clause) {
		exec.OnClausePayload(query, k, from, clauses)
	}
	var onFrame func(k int, frame *cnf.Formula)
	if sink, ok := exec.(FrameSink); ok {
		onFrame = func(k int, frame *cnf.Formula) {
			sink.OnFrame(query, k, frame)
		}
	}
	cfg := racer.Config{
		Strategies:           s.cfg.Strategies,
		Jobs:                 s.cfg.Jobs,
		Solver:               s.cfg.Solver,
		ScoreMode:            s.cfg.ScoreMode,
		SwitchDivisor:        s.cfg.SwitchDivisor,
		PerInstanceConflicts: s.cfg.PerInstanceConflicts,
		ForceRecording:       s.cfg.ForceRecording,
		Exchange:             exchange,
		Race: func(q string, attempts []portfolio.LiveAttempt, assumps []lits.Lit, jobs int, stop <-chan struct{}) portfolio.RaceResult {
			return exec.RaceLive(Query(q), attempts, assumps, jobs, stop)
		},
		OnFrame: onFrame,
		Metrics: s.cfg.Metrics,
		Query:   string(query),
	}
	if dl, ok := ctx.Deadline(); ok {
		cfg.Deadline = dl
	}
	return cfg
}

// runBMCWarm drives the warm racer pool: one persistent incremental
// solver per strategy across the whole depth loop, with the optional
// depth-boundary clause bus (legacy bmc.RunPortfolioIncremental).
func (s *Session) runBMCWarm(ctx context.Context, u *unroll.Unroller) (*Result, error) {
	d := u.Delta()
	d.SetMetrics(s.unrollMetrics(QueryBMC))
	pool := racer.NewPool(racer.DeltaSource(d), s.poolConfig(ctx, QueryBMC, s.cfg.Exchange))
	res := &Result{
		Verdict:    Holds,
		K:          -1,
		Telemetry:  portfolio.NewTelemetry(),
		Strategies: pool.Strategies(),
		Jobs:       s.cfg.Jobs,
		Warm:       true,
	}
	res.Telemetry.SetMetrics(s.cfg.Metrics, string(QueryBMC))

	for k := 0; k <= s.cfg.MaxDepth; k++ {
		if ctx.Err() != nil {
			res.Verdict = Unknown
			res.K = k
			break
		}
		depthStart := time.Now()
		s.emit(Event{Kind: DepthStarted, Query: QueryBMC, K: k})
		sp := s.beginDepth(QueryBMC, k)
		out := pool.RaceDepthStop(k, ctx.Done())
		race := &out.Race
		res.Telemetry.Observe(k, race)
		res.Telemetry.ObserveExchange(out.Exported, out.Imported, out.DedupDropped, out.WinnerWarm, out.WinnerShared)
		s.observeRace(QueryBMC, k, race)
		s.observeExchange(QueryBMC, k, &out)

		ds := DepthStats{
			K:              k,
			Winner:         race.WinnerName(),
			EncodeWall:     out.EncodeWall,
			SolveWall:      race.Wall,
			FormulaVars:    out.FrameVars,
			FormulaClauses: out.TotalClauses,
			FormulaLits:    out.TotalLits,
			CoreClauses:    out.CoreClauses,
			CoreVars:       out.CoreVars,
			RecorderBytes:  out.RecorderBytes,
		}
		if race.Winner < 0 {
			ds.Status = sat.Unknown
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Unknown
			res.K = k
			return res, nil
		}

		r := race.Result
		ds.Status = r.Status
		ds.Stats = r.Stats
		res.Total.Add(r.Stats)

		switch r.Status {
		case sat.Sat:
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.Verdict = Falsified
			res.K = k
			res.Trace = d.ExtractTrace(r.Model, k)
			if !s.cfg.SkipTraceVerification && !u.Replay(res.Trace) {
				return nil, fmt.Errorf("engine: depth-%d warm-portfolio counter-example (winner %s) failed replay on %s",
					k, race.WinnerName(), s.circ.Name())
			}
			return res, nil
		case sat.Unsat:
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			res.K = k
		default:
			// Unknown/Interrupted despite a nominal winner: this depth
			// is undecided, so deeper unrollings would be too — record
			// it and stop instead of silently continuing.
			ds.Wall = time.Since(depthStart)
			s.finishDepth(sp, QueryBMC, &ds)
			res.PerDepth = append(res.PerDepth, ds)
			return res, nil
		}
	}
	return res, nil
}
