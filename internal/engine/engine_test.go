package engine_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/bmc"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/induction"
	"repro/internal/lits"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
)

// checkModel runs one session on a suite model and fails the test on a
// structural error.
func checkModel(t *testing.T, m bench.Model, opts ...engine.Option) *engine.Result {
	t.Helper()
	sess, err := engine.New(m.Build(), 0, opts...)
	if err != nil {
		t.Fatalf("%s: New: %v", m.Name, err)
	}
	res, err := sess.Check(context.Background())
	if err != nil {
		t.Fatalf("%s: Check: %v", m.Name, err)
	}
	return res
}

// TestSessionEquivalenceSuite is the redesign's acceptance criterion: on
// every internal/bench family, all four BMC session configurations
// (scratch, incremental, cold portfolio, warm portfolio) return the
// identical verdict, depth, and counter-example trace through the one
// session API — and they match the legacy bmc.Run wrapper, i.e. the
// pre-redesign path's pinned behavior.
func TestSessionEquivalenceSuite(t *testing.T) {
	for _, m := range bench.Suite() {
		depth := m.MaxDepth
		if !m.ExpectFail && depth > 4 {
			depth = 4
		}
		if testing.Short() && m.ExpectFail && depth > 10 {
			depth = 10
		}
		base := []engine.Option{engine.WithBudgets(depth, 0)}
		ref := checkModel(t, m, base...)

		legacy, err := bmc.Run(m.Build(), 0, bmc.Options{
			MaxDepth: depth, Strategy: core.OrderDynamic, Solver: sat.Defaults(),
		})
		if err != nil {
			t.Fatalf("%s legacy: %v", m.Name, err)
		}
		if legacy.Verdict.String() != ref.Verdict.String() || legacy.Depth != ref.K {
			t.Errorf("%s: session (%v@%d) disagrees with legacy Run (%v@%d)",
				m.Name, ref.Verdict, ref.K, legacy.Verdict, legacy.Depth)
		}

		configs := []struct {
			name string
			opts []engine.Option
		}{
			{"incremental", append([]engine.Option{engine.WithIncremental()}, base...)},
			{"portfolio", append([]engine.Option{engine.WithPortfolio(nil, 0)}, base...)},
			{"warm", append([]engine.Option{engine.WithPortfolio(nil, 0), engine.WithIncremental(),
				engine.WithExchange(racer.ExchangeOptions{Enabled: true})}, base...)},
		}
		for _, cfg := range configs {
			res := checkModel(t, m, cfg.opts...)
			if res.Verdict != ref.Verdict || res.K != ref.K {
				t.Errorf("%s/%s: (%v@%d) disagrees with scratch session (%v@%d)",
					m.Name, cfg.name, res.Verdict, res.K, ref.Verdict, ref.K)
			}
			if ref.Verdict == engine.Falsified {
				if res.Trace == nil || res.Trace.Depth != ref.Trace.Depth {
					t.Errorf("%s/%s: counter-example trace missing or wrong depth", m.Name, cfg.name)
				}
			}
		}
		if m.ExpectFail && !testing.Short() && ref.Verdict == engine.Falsified && ref.K != m.FailDepth {
			t.Errorf("%s: counter-example at depth %d, ground truth %d", m.Name, ref.K, m.FailDepth)
		}
	}
}

// TestSessionTightBudgetEquivalence: with a 1-conflict budget every
// configuration must agree on the verdict — and, when the run decides,
// on its depth. The depth at which an Unknown budget bites is engine
// state-dependent (a warm solver's carried clauses change per-depth
// effort), so only decided outcomes pin K, exactly as the legacy suites
// did.
func TestSessionTightBudgetEquivalence(t *testing.T) {
	for _, name := range []string{"add_w8", "cnt_w4_t9", "twin_w8"} {
		m, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("model %s missing", name)
		}
		base := []engine.Option{engine.WithBudgets(6, 1)}
		ref := checkModel(t, m, base...)
		for _, cfg := range []struct {
			name string
			opts []engine.Option
		}{
			{"incremental", append([]engine.Option{engine.WithIncremental()}, base...)},
			{"portfolio", append([]engine.Option{engine.WithPortfolio(nil, 0)}, base...)},
			{"warm", append([]engine.Option{engine.WithPortfolio(nil, 0), engine.WithIncremental()}, base...)},
		} {
			res := checkModel(t, m, cfg.opts...)
			if res.Verdict != ref.Verdict {
				t.Errorf("%s/%s: tight budget verdict %v disagrees with scratch %v",
					name, cfg.name, res.Verdict, ref.Verdict)
			}
			if ref.Verdict != engine.Unknown && res.K != ref.K {
				t.Errorf("%s/%s: decided at depth %d, scratch at %d", name, cfg.name, res.K, ref.K)
			}
		}
	}
}

// TestKindSessionEquivalence: the three k-induction configurations agree
// on status and K across the proved / deeper-k / falsified regimes, and
// match the legacy induction.Prove wrapper.
func TestKindSessionEquivalence(t *testing.T) {
	models := []struct {
		name  string
		build bench.Model
		maxK  int
	}{
		{"twin", bench.Model{Name: "twin", Build: func() *circuit.Circuit { return bench.Twin(6, 0, 0) }}, 4},
		{"gcnt_offset", bench.Model{Name: "gcnt_offset", Build: func() *circuit.Circuit { return bench.OffsetCounter(4, 10, 12) }}, 8},
		{"tlc_bug", bench.Model{Name: "tlc_bug", Build: func() *circuit.Circuit { return bench.TrafficLight(true, 0, 0) }}, 4},
	}
	for _, tc := range models {
		kind := []engine.Option{engine.WithEngine(engine.KInduction), engine.WithBudgets(tc.maxK, 0)}
		ref := checkModel(t, tc.build, kind...)

		legacy, err := induction.Prove(tc.build.Build(), 0, induction.Options{
			MaxK: tc.maxK, Strategy: core.OrderDynamic, Solver: sat.Defaults(),
		})
		if err != nil {
			t.Fatalf("%s legacy: %v", tc.name, err)
		}
		if legacy.Status.String() != ref.Verdict.String() || legacy.K != ref.K {
			t.Errorf("%s: session (%v@%d) disagrees with legacy Prove (%v@%d)",
				tc.name, ref.Verdict, ref.K, legacy.Status, legacy.K)
		}

		for _, cfg := range []struct {
			name string
			opts []engine.Option
		}{
			{"portfolio", append([]engine.Option{engine.WithPortfolio(nil, 0)}, kind...)},
			{"warm", append([]engine.Option{engine.WithPortfolio(nil, 0), engine.WithIncremental(),
				engine.WithExchange(racer.ExchangeOptions{Enabled: true})}, kind...)},
			{"warm-single", append([]engine.Option{engine.WithIncremental()}, kind...)},
		} {
			res := checkModel(t, tc.build, cfg.opts...)
			if res.Verdict != ref.Verdict || res.K != ref.K {
				t.Errorf("%s/%s: (%v@%d) disagrees with sequential session (%v@%d)",
					tc.name, cfg.name, res.Verdict, res.K, ref.Verdict, ref.K)
			}
		}
	}
}

// countingExecutor wraps LocalExecutor and counts what flows through the
// seam.
type countingExecutor struct {
	engine.LocalExecutor
	races, liveRaces, payloads int
}

func (e *countingExecutor) Race(q engine.Query, f *cnf.Formula, attempts []portfolio.Attempt, jobs int, stop <-chan struct{}) portfolio.RaceResult {
	e.races++
	return e.LocalExecutor.Race(q, f, attempts, jobs, stop)
}

func (e *countingExecutor) RaceLive(q engine.Query, attempts []portfolio.LiveAttempt, assumps []lits.Lit, jobs int, stop <-chan struct{}) portfolio.RaceResult {
	e.liveRaces++
	return e.LocalExecutor.RaceLive(q, attempts, assumps, jobs, stop)
}

func (e *countingExecutor) OnClausePayload(q engine.Query, k int, from string, clauses []cnf.Clause) {
	e.payloads += len(clauses)
}

// TestExecutorSeam: every race of a portfolio session — cold and warm —
// is submitted through the configured Executor, and the warm pool's
// clause-bus payloads flow through its hook; swapping the executor does
// not change the verdict.
func TestExecutorSeam(t *testing.T) {
	m, ok := bench.ByName("add_w8")
	if !ok {
		t.Fatal("model add_w8 missing")
	}
	const depth = 4
	ref := checkModel(t, m, engine.WithBudgets(depth, 0))

	cold := &countingExecutor{}
	res := checkModel(t, m, engine.WithBudgets(depth, 0), engine.WithPortfolio(nil, 0),
		engine.WithExecutor(cold))
	if cold.races != depth+1 {
		t.Errorf("cold: %d races through the executor, want %d", cold.races, depth+1)
	}
	if res.Verdict != ref.Verdict || res.K != ref.K {
		t.Errorf("cold: verdict changed behind a custom executor: (%v@%d) vs (%v@%d)",
			res.Verdict, res.K, ref.Verdict, ref.K)
	}

	warm := &countingExecutor{}
	res = checkModel(t, m, engine.WithBudgets(depth, 0), engine.WithPortfolio(nil, 0),
		engine.WithIncremental(), engine.WithExchange(racer.ExchangeOptions{Enabled: true}),
		engine.WithExecutor(warm))
	if warm.liveRaces != depth+1 {
		t.Errorf("warm: %d live races through the executor, want %d", warm.liveRaces, depth+1)
	}
	if warm.payloads == 0 {
		t.Error("warm: no clause-bus payloads reached the executor hook")
	}
	if res.Verdict != ref.Verdict || res.K != ref.K {
		t.Errorf("warm: verdict changed behind a custom executor: (%v@%d) vs (%v@%d)",
			res.Verdict, res.K, ref.Verdict, ref.K)
	}
}

// TestProgressEvents: the event stream mirrors the per-depth results —
// one DepthStarted/DepthFinished pair per depth in order, with the
// finished stats matching Result.PerDepth.
func TestProgressEvents(t *testing.T) {
	m, ok := bench.ByName("cnt_w4_t9")
	if !ok {
		t.Fatal("model cnt_w4_t9 missing")
	}
	var events []engine.Event
	res := checkModel(t, m, engine.WithBudgets(12, 0),
		engine.WithProgress(func(e engine.Event) { events = append(events, e) }))
	if res.Verdict != engine.Falsified || res.K != 9 {
		t.Fatalf("unexpected result (%v@%d)", res.Verdict, res.K)
	}
	var finished []engine.DepthStats
	depth := -1
	for _, e := range events {
		switch e.Kind {
		case engine.DepthStarted:
			if e.K != depth+1 {
				t.Fatalf("DepthStarted out of order: got k=%d after k=%d", e.K, depth)
			}
			depth = e.K
		case engine.DepthFinished:
			if e.K != depth {
				t.Fatalf("DepthFinished for k=%d inside depth %d", e.K, depth)
			}
			finished = append(finished, e.Depth)
		}
	}
	if !reflect.DeepEqual(finished, res.PerDepth) {
		t.Errorf("event stream does not mirror PerDepth: %d events vs %d rows", len(finished), len(res.PerDepth))
	}
}

// TestKindProgressEvents: the k-induction engines emit base and step
// events per depth.
func TestKindProgressEvents(t *testing.T) {
	var base, step int
	m := bench.Model{Name: "twin", Build: func() *circuit.Circuit { return bench.Twin(6, 0, 0) }}
	res := checkModel(t, m, engine.WithEngine(engine.KInduction), engine.WithBudgets(4, 0),
		engine.WithPortfolio(nil, 0), engine.WithIncremental(),
		engine.WithProgress(func(e engine.Event) {
			if e.Kind != engine.DepthFinished {
				return
			}
			switch e.Query {
			case engine.QueryBase:
				base++
			case engine.QueryStep:
				step++
			}
		}))
	if res.Verdict != engine.Proved {
		t.Fatalf("unexpected verdict %v", res.Verdict)
	}
	if base == 0 || base != step {
		t.Errorf("expected matching base/step event counts, got base=%d step=%d", base, step)
	}
}

// TestSessionRepeatable: a Session can be checked repeatedly; every call
// runs from scratch and returns the same verdict.
func TestSessionRepeatable(t *testing.T) {
	m, ok := bench.ByName("tlc_bug")
	if !ok {
		t.Fatal("model tlc_bug missing")
	}
	sess, err := engine.New(m.Build(), 0, engine.WithBudgets(5, 0), engine.WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.Check(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first.Verdict != second.Verdict || first.K != second.K {
		t.Errorf("repeat check diverged: (%v@%d) vs (%v@%d)", first.Verdict, first.K, second.Verdict, second.K)
	}
}
