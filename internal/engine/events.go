package engine

// Query identifies which instance sequence of a session an event (or a
// clause-bus payload) concerns.
type Query string

// Queries.
const (
	// QueryBMC is the single instance sequence of the BMC engine.
	QueryBMC Query = "bmc"
	// QueryBase is the k-induction base-case sequence (counter-examples
	// of length exactly k).
	QueryBase Query = "base"
	// QueryStep is the k-induction step-case sequence (simple-path
	// induction steps).
	QueryStep Query = "step"
)

// EventKind classifies progress events.
type EventKind int

// Event kinds.
const (
	// DepthStarted fires before a depth's instance is solved (or raced).
	// The k-induction engines emit one per query: base and step together
	// when the two queries race in parallel, the step one only once the
	// base verdict lets it run in the sequential prover.
	DepthStarted EventKind = iota
	// DepthFinished fires once a depth's instance has come to rest, with
	// the depth's statistics in Event.Depth. For the k-induction engine
	// it fires once per query (base, then step) per depth; a step query
	// whose race was cancelled because the base verdict made it moot
	// reports its winner empty and its status undecided.
	DepthFinished
)

// Event is one progress notification of a running check. Events are
// delivered synchronously from the depth loop's goroutine in depth
// order, so consumers need no locking; a slow consumer slows the check.
type Event struct {
	Kind  EventKind
	Query Query
	// K is the depth the event concerns.
	K int
	// Depth carries the finished depth's statistics (DepthFinished only).
	Depth DepthStats
}
