package engine

import (
	"time"

	"repro/internal/sat"
)

// Query identifies which instance sequence of a session an event (or a
// clause-bus payload) concerns.
type Query string

// Queries.
const (
	// QueryBMC is the single instance sequence of the BMC engine.
	QueryBMC Query = "bmc"
	// QueryBase is the k-induction base-case sequence (counter-examples
	// of length exactly k).
	QueryBase Query = "base"
	// QueryStep is the k-induction step-case sequence (simple-path
	// induction steps).
	QueryStep Query = "step"
)

// EventKind classifies progress events.
type EventKind int

// Event kinds.
const (
	// DepthStarted fires before a depth's instance is solved (or raced).
	// The k-induction engines emit one per query: base and step together
	// when the two queries race in parallel, the step one only once the
	// base verdict lets it run in the sequential prover.
	DepthStarted EventKind = iota
	// DepthFinished fires once a depth's instance has come to rest, with
	// the depth's statistics in Event.Depth. For the k-induction engine
	// it fires once per query (base, then step) per depth; a step query
	// whose race was cancelled because the base verdict made it moot
	// reports its winner empty and its status undecided.
	DepthFinished
	// RaceFinished fires after a depth's race has fully joined (portfolio
	// configurations only), before the depth's DepthFinished, with one
	// row per racer in Event.Racers — the per-strategy view DepthFinished
	// collapses into its winner column.
	RaceFinished
	// ExchangeFlushed fires after a depth-boundary clause-bus round moved
	// (or dropped) any clauses (warm pools with the bus enabled), with
	// per-strategy traffic in Event.Exchange. Idle rounds emit nothing.
	ExchangeFlushed
)

// RacerRow is one racer's outcome in a RaceFinished event.
type RacerRow struct {
	Name      string
	Status    sat.Status
	Conflicts int64
	// Wall is the attempt's solve time; Wait how long it queued for a
	// worker slot before starting.
	Wall time.Duration
	Wait time.Duration
	// Winner marks the racer whose verdict was kept; Canceled racers were
	// stopped by the win; Skipped ones never started.
	Winner   bool
	Canceled bool
	Skipped  bool
}

// ExchangeRow is one strategy's clause-bus traffic in an ExchangeFlushed
// event: clauses its solver exported, accepted from others, and rejected
// as duplicates.
type ExchangeRow struct {
	Strategy     string
	Exported     int64
	Imported     int64
	DedupDropped int64
}

// Event is one progress notification of a running check. Events are
// delivered synchronously from the depth loop's goroutine in depth
// order, so consumers need no locking; a slow consumer slows the check.
type Event struct {
	Kind  EventKind
	Query Query
	// K is the depth the event concerns.
	K int
	// Depth carries the finished depth's statistics (DepthFinished only).
	Depth DepthStats
	// Racers carries the per-racer rows of a joined race (RaceFinished
	// only).
	Racers []RacerRow
	// Exchange carries the per-strategy clause-bus rows of a flushed
	// depth boundary (ExchangeFlushed only).
	Exchange []ExchangeRow
}
