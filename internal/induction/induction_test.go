package induction

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/portfolio"
	"repro/internal/sat"
	"repro/internal/unroll"
)

func prove(t *testing.T, c *circuit.Circuit, st core.Strategy, maxK int) *Result {
	t.Helper()
	res, err := Prove(c, 0, Options{
		MaxK:     maxK,
		Strategy: st,
		Solver:   sat.Defaults(),
		Deadline: time.Now().Add(30 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwinIsInductiveImmediately(t *testing.T) {
	// Twin registers: x == y is preserved by every step, so the property
	// closes at k = 0.
	res := prove(t, bench.Twin(8, 0, 0), core.OrderVSIDS, 4)
	if res.Status != Proved {
		t.Fatalf("status %v, want proved", res.Status)
	}
	if res.K != 0 {
		t.Fatalf("proved at k=%d, want 0", res.K)
	}
}

func TestGatedCounterProved(t *testing.T) {
	// "Counter never reaches m" is inductive: m is only reachable from
	// m-1, where the wrap fires instead.
	res := prove(t, bench.GatedCounter(4, 10, 0, 0), core.OrderVSIDS, 6)
	if res.Status != Proved {
		t.Fatalf("status %v at k=%d, want proved", res.Status, res.K)
	}
}

func TestNonInductiveInvariantNeedsDeeperK(t *testing.T) {
	// "Counter never reaches m+2": true (states above m-1 are unreachable)
	// but not 0-inductive — the step case at k=0 can start in the
	// unreachable state m+1 and step to m+2. The simple-path constraint
	// makes deeper induction close it.
	c := circuit.New("gcnt_offset")
	en := c.Input("en")
	w := c.LatchWord("cnt", 4, 0)
	inc, _ := c.IncWord(w)
	wrap := c.EqConst(w, 9)
	bump := c.MuxWord(wrap, c.ConstWord(4, 0), inc)
	c.SetNextWord(w, c.MuxWord(en, bump, w))
	c.AddProperty("never_12", c.EqConst(w, 12))

	res := prove(t, c, core.OrderVSIDS, 16)
	if res.Status != Proved {
		t.Fatalf("status %v at k=%d, want proved", res.Status, res.K)
	}
	if res.K == 0 {
		t.Fatal("property should not be 0-inductive")
	}
}

func TestBuggyModelsFalsifiedAtBMCDepth(t *testing.T) {
	for _, name := range []string{"tlc_bug", "arb_5_bug", "pipe_s5_bug"} {
		m, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		res := prove(t, m.Build(), core.OrderVSIDS, m.FailDepth+2)
		if res.Status != Falsified {
			t.Fatalf("%s: status %v, want falsified", name, res.Status)
		}
		if res.K != m.FailDepth {
			t.Fatalf("%s: counter-example at %d, want %d", name, res.K, m.FailDepth)
		}
		if res.Trace == nil {
			t.Fatalf("%s: no trace", name)
		}
	}
}

func TestStrategiesAgreeOnInduction(t *testing.T) {
	models := []func() *circuit.Circuit{
		func() *circuit.Circuit { return bench.Twin(6, 0, 0) },
		func() *circuit.Circuit { return bench.GatedCounter(4, 10, 0, 0) },
		func() *circuit.Circuit { return bench.TrafficLight(true, 0, 0) },
	}
	for i, build := range models {
		base := prove(t, build(), core.OrderVSIDS, 8)
		for _, st := range []core.Strategy{core.OrderStatic, core.OrderDynamic} {
			res := prove(t, build(), st, 8)
			if res.Status != base.Status || res.K != base.K {
				t.Fatalf("model %d: %v gives %v@%d, baseline %v@%d",
					i, st, res.Status, res.K, base.Status, base.K)
			}
		}
	}
}

func TestUnknownWhenMaxKTooSmall(t *testing.T) {
	// The offset-counter invariant is not 0- or 1-inductive; MaxK = 1
	// must yield Unknown, never a wrong verdict.
	c := circuit.New("gcnt_offset2")
	en := c.Input("en")
	w := c.LatchWord("cnt", 4, 0)
	inc, _ := c.IncWord(w)
	wrap := c.EqConst(w, 9)
	bump := c.MuxWord(wrap, c.ConstWord(4, 0), inc)
	c.SetNextWord(w, c.MuxWord(en, bump, w))
	c.AddProperty("never_12", c.EqConst(w, 12))

	res := prove(t, c, core.OrderVSIDS, 1)
	if res.Status != Unknown {
		t.Fatalf("status %v, want unknown at MaxK=1", res.Status)
	}
}

func TestStepFormulaShape(t *testing.T) {
	c := bench.Twin(4, 0, 0)
	u, err := unroll.New(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := StepFormula(u, 2)
	// Aux variables must extend past the frame-stable range.
	if f.NumVars <= u.NumVars(3) {
		t.Fatalf("no aux vars allocated: %d <= %d", f.NumVars, u.NumVars(3))
	}
	for i, cl := range f.Clauses {
		if int(cl.MaxVar()) > f.NumVars {
			t.Fatalf("clause %d: var %d out of range %d", i, cl.MaxVar(), f.NumVars)
		}
	}
	// The step instance of an inductive property must be UNSAT.
	if r := sat.New(f, sat.Defaults()).Solve(); r.Status != sat.Unsat {
		t.Fatalf("twin step at k=2: %v, want UNSAT", r.Status)
	}
}

func TestStepFormulaSatisfiableForNonInductive(t *testing.T) {
	// The offset-counter's k=0 step must be SAT (the unreachable
	// pre-state exists in the unconstrained state space).
	c := circuit.New("gcnt_offset3")
	en := c.Input("en")
	w := c.LatchWord("cnt", 4, 0)
	inc, _ := c.IncWord(w)
	wrap := c.EqConst(w, 9)
	bump := c.MuxWord(wrap, c.ConstWord(4, 0), inc)
	c.SetNextWord(w, c.MuxWord(en, bump, w))
	c.AddProperty("never_12", c.EqConst(w, 12))
	u, err := unroll.New(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := sat.New(StepFormula(u, 0), sat.Defaults()).Solve(); r.Status != sat.Sat {
		t.Fatalf("k=0 step: %v, want SAT", r.Status)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{Proved: "proved", Falsified: "falsified", Unknown: "unknown"} {
		if got := s.String(); got != want {
			t.Errorf("%d: %q != %q", s, got, want)
		}
	}
}

func TestProveRejectsBadProperty(t *testing.T) {
	c := circuit.New("p")
	c.AddProperty("p", circuit.False)
	if _, err := Prove(c, 7, Options{MaxK: 2, Solver: sat.Defaults()}); err == nil {
		t.Fatal("expected error for bad property index")
	}
}

func provePortfolio(t *testing.T, c *circuit.Circuit, maxK int) *PortfolioResult {
	t.Helper()
	res, err := ProvePortfolio(c, 0, PortfolioOptions{
		Options: Options{
			MaxK:     maxK,
			Solver:   sat.Defaults(),
			Deadline: time.Now().Add(30 * time.Second),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPortfolioAgreesWithSequentialInduction: racing the base and step
// queries must reproduce Prove's status and depth on proved, falsified,
// and deeper-k models.
func TestPortfolioAgreesWithSequentialInduction(t *testing.T) {
	models := []struct {
		name  string
		build func() *circuit.Circuit
		maxK  int
	}{
		{"twin", func() *circuit.Circuit { return bench.Twin(8, 0, 0) }, 4},
		{"gcnt", func() *circuit.Circuit { return bench.GatedCounter(4, 10, 0, 0) }, 6},
		{"tlc_bug", func() *circuit.Circuit { return bench.TrafficLight(true, 0, 0) }, 4},
		{"pipe_s5_bug", func() *circuit.Circuit { return bench.Pipeline(5, 8, true) }, 8},
	}
	for _, m := range models {
		seq := prove(t, m.build(), core.OrderVSIDS, m.maxK)
		par := provePortfolio(t, m.build(), m.maxK)
		if par.Status != seq.Status || par.K != seq.K {
			t.Fatalf("%s: portfolio %v@%d vs sequential %v@%d",
				m.name, par.Status, par.K, seq.Status, seq.K)
		}
		if par.Status == Falsified && par.Trace == nil {
			t.Fatalf("%s: falsified without trace", m.name)
		}
		// Every completed depth raced both queries.
		if len(par.BaseTelemetry.Depths) == 0 || len(par.StepTelemetry.Depths) == 0 {
			t.Fatalf("%s: telemetry empty (base %d, step %d depths)",
				m.name, len(par.BaseTelemetry.Depths), len(par.StepTelemetry.Depths))
		}
	}
}

// TestPortfolioInductionTimeaxisOnly: a timeaxis-containing subset must
// work on the step formula too (auxiliary variables unscored, no panic).
func TestPortfolioInductionTimeaxisOnly(t *testing.T) {
	res, err := ProvePortfolio(bench.GatedCounter(4, 10, 0, 0), 0, PortfolioOptions{
		Options: Options{
			MaxK:     6,
			Solver:   sat.Defaults(),
			Deadline: time.Now().Add(30 * time.Second),
		},
		Strategies: portfolio.StrategySet{core.OrderTimeAxis, core.OrderVSIDS},
		Jobs:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proved {
		t.Fatalf("status %v, want proved", res.Status)
	}
}
