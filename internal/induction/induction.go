// Package induction implements k-induction (temporal induction in the
// sense of Eén & Sörensson, the incremental-BMC related work the paper
// cites as [5]): a property is proved when, in addition to the bounded
// base case, the inductive step — "every simple path of k+1 consecutive
// P-states is followed by another P-state" — is unsatisfiable.
//
// The engine shares the BMC substrate: the unroller provides the
// transition clauses, and the same refined decision orderings can steer
// the step instances (their sequence is exactly as correlated as BMC's,
// so the paper's observation carries over).
package induction

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lits"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// Status classifies the outcome of a Prove call.
type Status int

// Outcomes.
const (
	// Unknown: MaxK or a budget was exhausted before a verdict.
	Unknown Status = iota
	// Proved: the property holds on all reachable states (base case clean
	// up to k and step case UNSAT at k).
	Proved
	// Falsified: a concrete counter-example was found by the base case.
	Falsified
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Proved:
		return "proved"
	case Falsified:
		return "falsified"
	default:
		return "unknown"
	}
}

// Options configures a proof attempt.
type Options struct {
	// MaxK bounds the induction depth.
	MaxK int
	// Strategy selects the decision ordering for both base and step
	// instances (the refined orderings apply: step instances are as
	// correlated as BMC instances).
	Strategy core.Strategy
	// Solver carries the base solver options.
	Solver sat.Options
	// PerInstanceConflicts bounds each SAT call (0 = unlimited).
	PerInstanceConflicts int64
	// Deadline bounds the whole run (zero = none).
	Deadline time.Time
}

// Result is the outcome of Prove.
type Result struct {
	Status Status
	// K: the counter-example length (Falsified), the induction depth that
	// closed the proof (Proved), or — for Unknown — the last depth whose
	// queries actually ran (-1 when the deadline expired before depth 0;
	// a depth whose own solve hit a budget still counts as attempted).
	K int
	// Trace is the counter-example for Falsified.
	Trace *unroll.Trace
	// BaseStats/StepStats accumulate solver statistics per case.
	BaseStats, StepStats sat.Stats
}

// Prove runs k-induction on property propIdx of the circuit.
func Prove(c *circuit.Circuit, propIdx int, opts Options) (*Result, error) {
	u, err := unroll.New(c, propIdx)
	if err != nil {
		return nil, err
	}
	res := &Result{Status: Unknown, K: -1}
	baseBoard := core.NewScoreBoard(core.WeightedSum)
	stepBoard := core.NewScoreBoard(core.WeightedSum)
	useCores := opts.Strategy == core.OrderStatic || opts.Strategy == core.OrderDynamic

	for k := 0; k <= opts.MaxK; k++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			// The deadline expired before depth k was attempted: K stays at
			// the last depth whose queries ran, not the one that never did.
			return res, nil
		}
		res.K = k

		// Base case: a counter-example of length exactly k.
		base := u.Formula(k)
		r, rec := solveOne(base, baseBoard, k, useCores, opts)
		res.BaseStats.Add(r.Stats)
		switch r.Status {
		case sat.Sat:
			res.Status = Falsified
			res.Trace = u.ExtractTrace(r.Model, k)
			if !u.Replay(res.Trace) {
				return nil, fmt.Errorf("induction: depth-%d counter-example failed replay", k)
			}
			return res, nil
		case sat.Unknown:
			return res, nil
		default:
			if rec != nil && useCores {
				baseBoard.Update(rec.CoreVars(base), k+1)
			}
		}

		// Step case: P-states s_0..s_k, pairwise distinct, with a
		// transition into ¬P at s_{k+1}. UNSAT closes the proof.
		step := StepFormula(u, k)
		r, rec = solveOne(step, stepBoard, k, useCores, opts)
		res.StepStats.Add(r.Stats)
		switch r.Status {
		case sat.Unsat:
			res.Status = Proved
			if rec != nil && useCores {
				stepBoard.Update(rec.CoreVars(step), k+1)
			}
			return res, nil
		case sat.Unknown:
			return res, nil
		default:
			if useCores {
				// SAT step: no core; scores carry over unchanged.
				continue
			}
		}
	}
	res.K = opts.MaxK
	return res, nil
}

// solveOne dispatches one instance under the configured ordering.
func solveOne(f *cnf.Formula, board *core.ScoreBoard, k int, useCores bool, opts Options) (sat.Result, *core.Recorder) {
	so := opts.Solver
	so.Guidance = nil
	so.SwitchAfterDecisions = 0
	so.Recorder = nil
	if opts.PerInstanceConflicts > 0 {
		so.MaxConflicts = opts.PerInstanceConflicts
	}
	if !opts.Deadline.IsZero() {
		so.Deadline = opts.Deadline
	}
	opts.Strategy.Configure(&so, board, f)
	var rec *core.Recorder
	if useCores {
		rec = core.NewRecorder(f.NumClauses())
		so.Recorder = rec
	}
	return sat.New(f, so).Solve(), rec
}

// StepFormula builds the induction step instance of depth k over the
// unroller's circuit: frames 0..k+1 connected by the transition relation
// with NO initial-state constraint, the property's bad signal false in
// frames 0..k and asserted in frame k+1, and pairwise state disequality
// between all frames (the simple-path constraint that makes k-induction
// complete on finite systems).
//
// Auxiliary variables for the disequality encoding are allocated past the
// unroller's frame-stable range, so bmc_score transfer on circuit
// variables is unaffected.
func StepFormula(u *unroll.Unroller, k int) *cnf.Formula {
	c := u.Circuit()
	frames := k + 2 // frames 0..k+1
	f := u.Formula(k + 1)

	// Remove the init units and the final property literal: rebuild from
	// scratch instead — Formula's clause layout is an implementation
	// detail we must not depend on. So: fresh formula.
	f = cnf.New(u.NumVars(k + 1))

	// Gate relations in every frame.
	for frame := 0; frame < frames; frame++ {
		for n := circuit.NodeID(1); int(n) < c.NumNodes(); n++ {
			if c.Kind(n) != circuit.KindAnd {
				continue
			}
			f0, f1 := c.Fanins(n)
			out := lits.PosLit(u.VarFor(n, frame))
			f.AddAnd2(out, u.LitFor(f0, frame), u.LitFor(f1, frame))
		}
	}
	// Latch transitions.
	for frame := 0; frame < frames-1; frame++ {
		for _, id := range c.Latches() {
			next := c.LatchNext(id)
			lhs := lits.PosLit(u.VarFor(id, frame+1))
			switch next {
			case circuit.True:
				f.AddUnit(lhs)
			case circuit.False:
				f.AddUnit(lhs.Neg())
			default:
				f.AddEq(lhs, u.LitFor(next, frame))
			}
		}
	}

	// Property: good in frames 0..k, bad in frame k+1.
	bad := c.Properties()[u.PropIdx()].Bad
	switch bad {
	case circuit.True, circuit.False:
		// Constant properties need no step reasoning; emit the trivial
		// encoding (bad const true: frames 0..k unsatisfiable; const
		// false: bad frame unsatisfiable).
		if bad == circuit.True && k >= 0 {
			f.AddClause(cnf.Clause{})
		}
		if bad == circuit.False {
			f.AddClause(cnf.Clause{})
		}
		return f
	}
	for frame := 0; frame <= k; frame++ {
		f.AddUnit(u.LitFor(bad, frame).Neg())
	}
	f.AddUnit(u.LitFor(bad, k+1))

	// Simple path: states of frames 0..k pairwise distinct. For each pair
	// i<j introduce one diff variable per latch (diff ↔ latch_i ⊕ latch_j
	// one direction suffices: diff → xor) and require OR(diffs).
	latches := c.Latches()
	aux := u.NumVars(k + 1)
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			or := make(cnf.Clause, 0, len(latches))
			for _, id := range latches {
				aux++
				d := lits.PosLit(lits.Var(aux))
				a := lits.PosLit(u.VarFor(id, i))
				b := lits.PosLit(u.VarFor(id, j))
				// d → (a ⊕ b): clauses (¬d ∨ a ∨ b) ∧ (¬d ∨ ¬a ∨ ¬b).
				f.AddClause(cnf.Clause{d.Neg(), a, b})
				f.AddClause(cnf.Clause{d.Neg(), a.Neg(), b.Neg()})
				or = append(or, d)
			}
			f.AddClause(or)
		}
	}
	f.NumVars = aux
	return f
}
