// Package induction holds the legacy k-induction entrypoints (temporal
// induction in the sense of Eén & Sörensson, the incremental-BMC related
// work the paper cites as [5]): a property is proved when, in addition to
// the bounded base case, the inductive step — "every simple path of k+1
// consecutive P-states is followed by another P-state" — is
// unsatisfiable.
//
// All three prove functions — Prove, ProvePortfolio,
// ProvePortfolioIncremental — are thin deprecated wrappers over the
// unified session API in internal/engine (engine.New with
// engine.WithEngine(engine.KInduction) + Session.Check). New code should
// use engine directly.
package induction

import (
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// Status classifies the outcome of a Prove call.
type Status int

// Outcomes.
const (
	// Unknown: MaxK or a budget was exhausted before a verdict.
	Unknown Status = iota
	// Proved: the property holds on all reachable states (base case clean
	// up to k and step case UNSAT at k).
	Proved
	// Falsified: a concrete counter-example was found by the base case.
	Falsified
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Proved:
		return "proved"
	case Falsified:
		return "falsified"
	default:
		return "unknown"
	}
}

// Options configures a proof attempt.
type Options struct {
	// MaxK bounds the induction depth.
	MaxK int
	// Strategy selects the decision ordering for both base and step
	// instances (the refined orderings apply: step instances are as
	// correlated as BMC instances).
	Strategy core.Strategy
	// Solver carries the base solver options.
	Solver sat.Options
	// PerInstanceConflicts bounds each SAT call (0 = unlimited).
	PerInstanceConflicts int64
	// Deadline bounds the whole run (zero = none).
	Deadline time.Time
}

// Result is the outcome of Prove.
type Result struct {
	Status Status
	// K: the counter-example length (Falsified), the induction depth that
	// closed the proof (Proved), or — for Unknown — the last depth whose
	// queries actually ran (-1 when the deadline expired before depth 0;
	// a depth whose own solve hit a budget still counts as attempted).
	K int
	// Trace is the counter-example for Falsified.
	Trace *unroll.Trace
	// BaseStats/StepStats accumulate solver statistics per case.
	BaseStats, StepStats sat.Stats
}

// engineOptions translates legacy Options into engine options.
func engineOptions(opts Options) []engine.Option {
	return []engine.Option{
		engine.WithEngine(engine.KInduction),
		engine.WithOrdering(opts.Strategy),
		engine.WithBudgets(opts.MaxK, opts.PerInstanceConflicts),
		engine.WithSolver(opts.Solver),
	}
}

// fromEngine maps the unified result back onto the legacy Result.
func fromEngine(er *engine.Result) *Result {
	res := &Result{
		K:         er.K,
		Trace:     er.Trace,
		BaseStats: er.BaseStats,
		StepStats: er.StepStats,
	}
	switch er.Verdict {
	case engine.Proved:
		res.Status = Proved
	case engine.Falsified:
		res.Status = Falsified
	default:
		res.Status = Unknown
	}
	return res
}

// Prove runs k-induction on property propIdx of the circuit.
//
// One behavioral difference from the pre-engine implementation:
// Strategy = core.OrderTimeAxis is rejected with an error (it used to be
// silently run as plain VSIDS — the sequential prover has no frame
// guidance; use ProvePortfolio or ProvePortfolioIncremental, whose
// racers do).
//
// Deprecated: use engine.New with engine.WithEngine(engine.KInduction);
// Prove is a thin wrapper kept for compatibility.
func Prove(c *circuit.Circuit, propIdx int, opts Options) (*Result, error) {
	sess, err := engine.New(c, propIdx, engineOptions(opts)...)
	if err != nil {
		return nil, err
	}
	ctx, cancel := engine.DeadlineContext(opts.Deadline)
	defer cancel()
	er, err := sess.Check(ctx)
	if err != nil {
		return nil, err
	}
	return fromEngine(er), nil
}

// StepFormula builds the induction step instance of depth k over the
// unroller's circuit. The encoding lives in unroll.StepFormula (next to
// the unrolling it is built from); this forwarder is kept for existing
// callers and tests.
func StepFormula(u *unroll.Unroller, k int) *cnf.Formula {
	return unroll.StepFormula(u, k)
}
