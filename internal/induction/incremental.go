package induction

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// ProvePortfolioIncremental is the warm-pool counterpart of
// ProvePortfolio: instead of cold-starting one solver per strategy per
// query per depth, it keeps TWO persistent racer pools alive across the
// whole proof attempt — one over the base-query sequence (the same
// unroll.Delta frames and per-depth activation literals BMC's warm pool
// uses) and one over the step-query sequence (unroll.StepDelta: per-depth
// step frames plus monotone simple-path disequalities, with each depth's
// bad literal behind an activation guard). Base instances of a k-induction
// run are exactly as correlated as BMC's, and step instances are a second
// such family, so learned clauses, VSIDS scores, and saved phases compound
// within each pool depth over depth.
//
// Per depth the two pools race in parallel, each across the strategy set
// (portfolio.RaceLive through racer.Pool): a decided base race whose
// verdict makes the step moot — SAT falsifies outright, undecided ends the
// attempt — cancels the still-running step race cooperatively
// (sat.SetStop via Pool.RaceDepthStop), and the cancelled race is recorded
// as aborted, not lost. Each pool owns its score board (winner unsat cores
// feed the static/dynamic guidance, as in ProvePortfolio's per-query
// boards), its own clause-exchange bus (opts.Exchange for the base pool,
// opts.StepExchange for the step pool — base and step are different
// formulas, so clauses never cross pools, and the step bus defaults off
// because step sequences are SAT-dominated), and its own telemetry with
// warm/shared win attribution.
//
// The verdict logic is exactly Prove's, so the proof status never depends
// on which racer won, only the effort does: Falsified needs a SAT base
// (replayed against the circuit), Proved needs the step UNSAT at a k whose
// base cases are all clean, and every engine reports the same k.
func ProvePortfolioIncremental(c *circuit.Circuit, propIdx int, opts PortfolioOptions) (*PortfolioResult, error) {
	u, err := unroll.New(c, propIdx)
	if err != nil {
		return nil, err
	}
	d := u.Delta()
	cfg := racer.Config{
		Strategies:           opts.Strategies,
		Jobs:                 opts.Jobs,
		Solver:               opts.Solver,
		PerInstanceConflicts: opts.PerInstanceConflicts,
		Deadline:             opts.Deadline,
	}
	// Both sequences spend stretches hunting models (every step instance
	// below the closing depth is SAT; the base instance at a failure depth
	// is SAT), where a full-mesh bus can converge all racers onto the same
	// wrong turn. Keep one racer import-free as the diversity reserve on
	// whichever bus is on.
	baseCfg := cfg
	baseCfg.Exchange = opts.Exchange
	baseCfg.Exchange.ReserveFirst = true
	stepCfg := cfg
	stepCfg.Exchange = opts.StepExchange
	stepCfg.Exchange.ReserveFirst = true
	basePool := racer.NewPool(racer.DeltaSource(d), baseCfg)
	stepPool := racer.NewPool(racer.StepSource(u.StepDelta()), stepCfg)
	res := &PortfolioResult{
		Result:        Result{Status: Unknown, K: -1},
		BaseTelemetry: portfolio.NewTelemetry(),
		StepTelemetry: portfolio.NewTelemetry(),
		Strategies:    basePool.Strategies(),
		Warm:          true,
	}

	for k := 0; k <= opts.MaxK; k++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			// The deadline expired before depth k's races started: K stays
			// at the last depth whose races ran, not the one that never did.
			return res, nil
		}
		res.K = k

		// The two pools race in parallel; a base verdict that makes the
		// step moot closes the stop channel so the step racers come to
		// rest instead of burning their full budgets (their conflicts are
		// kept — the pool's clause bus and warm state survive
		// cancellation).
		stopStep := make(chan struct{})
		var stepOut racer.DepthOutcome
		stepDone := make(chan struct{})
		go func() {
			defer close(stepDone)
			stepOut = stepPool.RaceDepthStop(k, stopStep)
		}()
		baseOut := basePool.RaceDepthStop(k, nil)
		baseRace := &baseOut.Race
		stepMoot := baseRace.Winner < 0 || baseRace.Result.Status != sat.Unsat
		if stepMoot {
			close(stopStep)
		}
		<-stepDone
		stepRace := &stepOut.Race

		res.BaseTelemetry.Observe(k, baseRace)
		res.BaseTelemetry.ObserveExchange(baseOut.Exported, baseOut.Imported, baseOut.WinnerWarm, baseOut.WinnerShared)
		if stepMoot {
			// Bus traffic is real even on an aborted depth, but the race
			// itself carries no win/loss signal (see ProvePortfolio).
			res.StepTelemetry.ObserveAborted(k, stepRace)
			res.StepTelemetry.ObserveExchange(stepOut.Exported, stepOut.Imported, false, false)
		} else {
			res.StepTelemetry.Observe(k, stepRace)
			res.StepTelemetry.ObserveExchange(stepOut.Exported, stepOut.Imported, stepOut.WinnerWarm, stepOut.WinnerShared)
		}
		if baseRace.Winner >= 0 {
			res.BaseStats.Add(baseRace.Result.Stats)
		}
		if stepRace.Winner >= 0 {
			res.StepStats.Add(stepRace.Result.Stats)
		}

		// Base case first: a counter-example ends everything; an
		// undecided base (budget) ends the attempt as Unknown.
		if baseRace.Winner < 0 {
			return res, nil
		}
		if baseRace.Result.Status == sat.Sat {
			res.Status = Falsified
			res.Trace = d.ExtractTrace(baseRace.Result.Model, k)
			if !u.Replay(res.Trace) {
				return nil, fmt.Errorf("induction: depth-%d warm-portfolio counter-example (winner %s) failed replay",
					k, baseRace.WinnerName())
			}
			return res, nil
		}

		// Base UNSAT: the step verdict decides. (Winner cores were already
		// folded into each pool's own board by RaceDepthStop.)
		if stepRace.Winner < 0 {
			return res, nil
		}
		if stepRace.Result.Status == sat.Unsat {
			res.Status = Proved
			return res, nil
		}
	}
	return res, nil
}
