package induction

import (
	"repro/internal/circuit"
	"repro/internal/engine"
)

// ProvePortfolioIncremental is the warm-pool counterpart of
// ProvePortfolio: instead of cold-starting one solver per strategy per
// query per depth, it keeps TWO persistent racer pools alive across the
// whole proof attempt — one over the base-query sequence (the same
// unroll.Delta frames and per-depth activation literals BMC's warm pool
// uses) and one over the step-query sequence (unroll.StepDelta). Base
// instances of a k-induction run are exactly as correlated as BMC's, and
// step instances are a second such family, so learned clauses, VSIDS
// scores, and saved phases compound within each pool depth over depth.
//
// Per depth the two pools race in parallel, each across the strategy
// set: a decided base race whose verdict makes the step moot cancels the
// still-running step race cooperatively, and the cancelled race is
// recorded as aborted, not lost. Each pool owns its score board, its own
// clause-exchange bus (opts.Exchange for the base pool, opts.StepExchange
// for the step pool — the step bus defaults off because step sequences
// are SAT-dominated), and its own telemetry with warm/shared win
// attribution.
//
// The verdict logic is exactly Prove's, so the proof status never
// depends on which racer won, only the effort does.
//
// Deprecated: use engine.New with engine.WithEngine(engine.KInduction),
// engine.WithPortfolio, engine.WithIncremental, and
// engine.WithExchange/WithStepExchange; ProvePortfolioIncremental is a
// thin wrapper kept for compatibility.
func ProvePortfolioIncremental(c *circuit.Circuit, propIdx int, opts PortfolioOptions) (*PortfolioResult, error) {
	eo := append(engineOptions(opts.Options),
		engine.WithPortfolio(opts.Strategies, opts.Jobs),
		engine.WithIncremental(),
		engine.WithExchange(opts.Exchange),
		engine.WithStepExchange(opts.StepExchange))
	sess, err := engine.New(c, propIdx, eo...)
	if err != nil {
		return nil, err
	}
	ctx, cancel := engine.DeadlineContext(opts.Deadline)
	defer cancel()
	er, err := sess.Check(ctx)
	if err != nil {
		return nil, err
	}
	return portfolioFromEngine(er), nil
}
