package induction

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lits"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// PortfolioOptions configures ProvePortfolio. The embedded Options carry
// the depth bound, budgets, and base solver configuration;
// Options.Strategy is ignored (the portfolio races Strategies instead).
type PortfolioOptions struct {
	Options
	// Strategies is the set raced on every query (default
	// portfolio.DefaultSet; timeaxis racers get frame-based guidance on
	// both the base and the step instance).
	Strategies portfolio.StrategySet
	// Jobs caps the concurrent solvers per query; the base and step
	// queries of one depth additionally run in parallel with each other,
	// so up to 2*Jobs solvers are live at once.
	Jobs int
	// Exchange configures the base pool's clause bus
	// (ProvePortfolioIncremental only; ProvePortfolio builds throwaway
	// solvers, which have nothing to share across depths). Each pool runs
	// its own bus — base and step instances are different formulas, so
	// clauses never cross between them — and the step pool's bus is
	// configured separately by StepExchange.
	Exchange racer.ExchangeOptions
	// StepExchange configures the step pool's own bus. Left zero it stays
	// off even when Exchange is enabled, deliberately: every step
	// instance below the closing depth is SAT, and a model hunt lives on
	// the warm racers' phase-saving momentum, which a shared clause diet
	// measurably perturbs (the base sequence is UNSAT-heavy, where
	// sharing is the proven win). Callers can still enable it explicitly
	// for UNSAT-dominated step workloads.
	StepExchange racer.ExchangeOptions
}

// PortfolioResult extends Result with per-query race telemetry.
type PortfolioResult struct {
	Result
	// BaseTelemetry/StepTelemetry record which ordering won each depth's
	// base and step race. Step races that were cancelled because their
	// base case already decided the verdict are counted as aborted, not as
	// losses (Telemetry.AbortedRaces).
	BaseTelemetry, StepTelemetry *portfolio.Telemetry
	// Strategies echoes the effective set.
	Strategies []string
	// Warm marks results produced by the persistent-pool engine
	// (ProvePortfolioIncremental).
	Warm bool
}

// ProvePortfolio is the concurrent counterpart of Prove. At every depth k
// the base query (counter-example of length exactly k) and the induction
// step query (simple-path step case) are independent SAT instances, so
// they are solved in parallel — and each query is itself raced across the
// whole strategy set, first verdict wins, losers cancelled (the ROADMAP's
// "portfolio for k-induction" item). A base-case counter-example aborts
// the still-running step race through the shared stop channel: its
// verdict would be moot.
//
// The verdict logic is exactly Prove's — Falsified needs a SAT base,
// Proved needs the step UNSAT at a k whose base cases are all clean — so
// the proof status never depends on which racer won, only the effort
// does. Each query keeps its own score board, fed by its races' winning
// cores, mirroring Prove's base/step separation.
func ProvePortfolio(c *circuit.Circuit, propIdx int, opts PortfolioOptions) (*PortfolioResult, error) {
	u, err := unroll.New(c, propIdx)
	if err != nil {
		return nil, err
	}
	strategies := opts.Strategies
	if len(strategies) == 0 {
		strategies = portfolio.DefaultSet()
	}
	res := &PortfolioResult{
		Result:        Result{Status: Unknown, K: -1},
		BaseTelemetry: portfolio.NewTelemetry(),
		StepTelemetry: portfolio.NewTelemetry(),
		Strategies:    strategies.Names(),
	}
	baseBoard := core.NewScoreBoard(core.WeightedSum)
	stepBoard := core.NewScoreBoard(core.WeightedSum)
	useCores := false
	for _, st := range strategies {
		if st == core.OrderStatic || st == core.OrderDynamic {
			useCores = true
		}
	}

	for k := 0; k <= opts.MaxK; k++ {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			// The deadline expired before depth k's races started: K stays
			// at the last depth whose races ran, not the one that never did.
			return res, nil
		}
		res.K = k

		base := u.Formula(k)
		step := StepFormula(u, k)

		// The two queries race in parallel; a SAT base verdict closes the
		// stop channel so the step race stops burning cores on a moot
		// question.
		stopStep := make(chan struct{})
		var stepRace portfolio.RaceResult
		var stepRecs []*core.Recorder
		stepDone := make(chan struct{})
		go func() {
			defer close(stepDone)
			stepRace, stepRecs = raceQuery(u, step, strategies, stepBoard, k, k+2, useCores, opts, stopStep)
		}()
		baseRace, baseRecs := raceQuery(u, base, strategies, baseBoard, k, k+1, useCores, opts, nil)
		// Only an UNSAT base keeps the step verdict relevant: a SAT base
		// falsifies outright, and an undecided base ends the attempt as
		// Unknown — either way the step race is moot, so stop it instead
		// of letting it burn its full budget.
		stepMoot := baseRace.Winner < 0 || baseRace.Result.Status != sat.Unsat
		if stepMoot {
			close(stopStep)
		}
		<-stepDone

		res.BaseTelemetry.Observe(k, &baseRace)
		if stepMoot {
			// A deliberately-cancelled race is no evidence about any
			// strategy; folding it into Observe would count every racer as
			// a loser and skew the win rates.
			res.StepTelemetry.ObserveAborted(k, &stepRace)
		} else {
			res.StepTelemetry.Observe(k, &stepRace)
		}
		if baseRace.Winner >= 0 {
			res.BaseStats.Add(baseRace.Result.Stats)
		}
		if stepRace.Winner >= 0 {
			res.StepStats.Add(stepRace.Result.Stats)
		}

		// Base case first: a counter-example ends everything; an
		// undecided base (budget) ends the attempt as Unknown.
		if baseRace.Winner < 0 {
			return res, nil
		}
		switch baseRace.Result.Status {
		case sat.Sat:
			res.Status = Falsified
			res.Trace = u.ExtractTrace(baseRace.Result.Model, k)
			if !u.Replay(res.Trace) {
				return nil, fmt.Errorf("induction: depth-%d portfolio counter-example (winner %s) failed replay",
					k, baseRace.WinnerName())
			}
			return res, nil
		case sat.Unsat:
			foldCore(baseBoard, baseRecs, &baseRace, base, k, useCores)
		}

		// Step case: UNSAT closes the proof.
		if stepRace.Winner < 0 {
			return res, nil
		}
		if stepRace.Result.Status == sat.Unsat {
			res.Status = Proved
			foldCore(stepBoard, stepRecs, &stepRace, step, k, useCores)
			return res, nil
		}
	}
	res.K = opts.MaxK
	return res, nil
}

// raceQuery races one query formula across the strategy set, one fully
// configured attempt per strategy. frames is the number of time frames
// the instance spans (k+1 for base, k+2 for step) — the timeaxis racers'
// guidance prefers earlier frames and leaves the step encoding's
// auxiliary disequality variables unscored.
func raceQuery(u *unroll.Unroller, f *cnf.Formula, strategies portfolio.StrategySet,
	board *core.ScoreBoard, k, frames int, useCores bool, opts PortfolioOptions, stop <-chan struct{}) (portfolio.RaceResult, []*core.Recorder) {
	attempts := make([]portfolio.Attempt, len(strategies))
	recs := make([]*core.Recorder, len(strategies))
	for i, st := range strategies {
		so := opts.Solver
		so.Guidance = nil
		so.SwitchAfterDecisions = 0
		so.Recorder = nil
		if opts.PerInstanceConflicts > 0 {
			so.MaxConflicts = opts.PerInstanceConflicts
		}
		if !opts.Deadline.IsZero() {
			so.Deadline = opts.Deadline
		}
		if st == core.OrderTimeAxis {
			so.Guidance = frameGuidance(u, frames, f.NumVars)
		} else {
			st.Configure(&so, board, f)
		}
		if useCores {
			recs[i] = core.NewRecorder(f.NumClauses())
			so.Recorder = recs[i]
		}
		attempts[i] = portfolio.Attempt{Name: st.String(), Opts: so}
	}
	return portfolio.Race(f, attempts, opts.Jobs, stop), recs
}

// foldCore feeds the winning racer's unsat core into the query's board.
func foldCore(board *core.ScoreBoard, recs []*core.Recorder, race *portfolio.RaceResult, f *cnf.Formula, k int, useCores bool) {
	if !useCores || race.Winner < 0 {
		return
	}
	if rec := recs[race.Winner]; rec != nil && rec.HasProof() {
		board.Update(rec.CoreVars(f), k+1)
	}
}

// frameGuidance builds the Shtrichman-style time-axis scores for an
// instance spanning the given number of frames: variables of frame 0
// score highest, later frames lower, and variables past the unroller's
// frame-stable range (the step encoding's disequality auxiliaries) score
// zero.
func frameGuidance(u *unroll.Unroller, frames, nVars int) []float64 {
	g := make([]float64, nVars+1)
	framed := u.NumVars(frames - 1)
	for v := 1; v <= nVars && v <= framed; v++ {
		_, frame := u.NodeOf(lits.Var(v))
		g[v] = float64(frames - frame)
	}
	return g
}
