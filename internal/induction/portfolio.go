package induction

import (
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/portfolio"
	"repro/internal/racer"
)

// PortfolioOptions configures ProvePortfolio. The embedded Options carry
// the depth bound, budgets, and base solver configuration;
// Options.Strategy is ignored (the portfolio races Strategies instead).
type PortfolioOptions struct {
	Options
	// Strategies is the set raced on every query (default
	// portfolio.DefaultSet; timeaxis racers get frame-based guidance on
	// both the base and the step instance).
	Strategies portfolio.StrategySet
	// Jobs caps the concurrent solvers per query; the base and step
	// queries of one depth additionally run in parallel with each other,
	// so up to 2*Jobs solvers are live at once.
	Jobs int
	// Exchange configures the base pool's clause bus
	// (ProvePortfolioIncremental only; ProvePortfolio builds throwaway
	// solvers, which have nothing to share across depths). Each pool runs
	// its own bus — base and step instances are different formulas, so
	// clauses never cross between them — and the step pool's bus is
	// configured separately by StepExchange.
	Exchange racer.ExchangeOptions
	// StepExchange configures the step pool's own bus. Left zero it stays
	// off even when Exchange is enabled, deliberately: every step
	// instance below the closing depth is SAT, and a model hunt lives on
	// the warm racers' phase-saving momentum, which a shared clause diet
	// measurably perturbs (the base sequence is UNSAT-heavy, where
	// sharing is the proven win). Callers can still enable it explicitly
	// for UNSAT-dominated step workloads.
	StepExchange racer.ExchangeOptions
}

// PortfolioResult extends Result with per-query race telemetry.
type PortfolioResult struct {
	Result
	// BaseTelemetry/StepTelemetry record which ordering won each depth's
	// base and step race. Step races that were cancelled because their
	// base case already decided the verdict are counted as aborted, not as
	// losses (Telemetry.AbortedRaces).
	BaseTelemetry, StepTelemetry *portfolio.Telemetry
	// Strategies echoes the effective set.
	Strategies []string
	// Warm marks results produced by the persistent-pool engine
	// (ProvePortfolioIncremental).
	Warm bool
}

// portfolioFromEngine maps the unified result onto the legacy
// PortfolioResult.
func portfolioFromEngine(er *engine.Result) *PortfolioResult {
	return &PortfolioResult{
		Result:        *fromEngine(er),
		BaseTelemetry: er.BaseTelemetry,
		StepTelemetry: er.StepTelemetry,
		Strategies:    er.Strategies,
		Warm:          er.Warm,
	}
}

// ProvePortfolio is the concurrent counterpart of Prove. At every depth k
// the base query (counter-example of length exactly k) and the induction
// step query (simple-path step case) are independent SAT instances, so
// they are solved in parallel — and each query is itself raced across the
// whole strategy set, first verdict wins, losers cancelled. A base-case
// counter-example aborts the still-running step race: its verdict would
// be moot.
//
// The verdict logic is exactly Prove's — Falsified needs a SAT base,
// Proved needs the step UNSAT at a k whose base cases are all clean — so
// the proof status never depends on which racer won, only the effort
// does.
//
// Deprecated: use engine.New with engine.WithEngine(engine.KInduction)
// and engine.WithPortfolio; ProvePortfolio is a thin wrapper kept for
// compatibility.
func ProvePortfolio(c *circuit.Circuit, propIdx int, opts PortfolioOptions) (*PortfolioResult, error) {
	eo := append(engineOptions(opts.Options),
		engine.WithPortfolio(opts.Strategies, opts.Jobs))
	sess, err := engine.New(c, propIdx, eo...)
	if err != nil {
		return nil, err
	}
	ctx, cancel := engine.DeadlineContext(opts.Deadline)
	defer cancel()
	er, err := sess.Check(ctx)
	if err != nil {
		return nil, err
	}
	return portfolioFromEngine(er), nil
}
