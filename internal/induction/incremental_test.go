package induction

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/lits"
	"repro/internal/portfolio"
	"repro/internal/racer"
	"repro/internal/sat"
	"repro/internal/unroll"
)

// offsetCounter is the non-0-inductive invariant used across the
// induction tests: true, but the step case only closes at deeper k under
// the simple-path constraint.
func offsetCounter() *circuit.Circuit { return bench.OffsetCounter(4, 10, 12) }

// TestStepDeltaEquisatisfiableWithStepFormula is the step encoding's
// defining property: a live solver accumulating unroll.StepDelta frames
// and solving under the depth's activation literal must reproduce the
// scratch StepFormula's satisfiability at every depth — across inductive
// (step UNSAT early), deeper-k (step SAT then UNSAT), and falsified
// models, and across several consecutive depths of one solver.
func TestStepDeltaEquisatisfiableWithStepFormula(t *testing.T) {
	models := []struct {
		name  string
		build func() *circuit.Circuit
		maxK  int
	}{
		{"twin", func() *circuit.Circuit { return bench.Twin(6, 0, 0) }, 4},
		{"gcnt", func() *circuit.Circuit { return bench.GatedCounter(4, 10, 0, 0) }, 4},
		{"gcnt_offset", func() *circuit.Circuit { return offsetCounter() }, 8},
		{"tlc_bug", func() *circuit.Circuit { return bench.TrafficLight(true, 0, 0) }, 4},
	}
	for _, m := range models {
		u, err := unroll.New(m.build(), 0)
		if err != nil {
			t.Fatal(err)
		}
		sd := u.StepDelta()
		live := sat.New(cnf.New(0), sat.Defaults())
		for k := 0; k <= m.maxK; k++ {
			frame := sd.Frame(k)
			live.AddVars(frame.NumVars)
			for _, cl := range frame.Clauses {
				live.AddClause(cl)
			}
			got := live.SolveAssuming([]lits.Lit{sd.ActLit(k)})
			want := sat.New(StepFormula(u, k), sat.Defaults()).Solve()
			if got.Status != want.Status {
				t.Fatalf("%s depth %d: delta=%v scratch=%v", m.name, k, got.Status, want.Status)
			}
		}
	}
}

// kindModels is the cross-engine equivalence workload: immediately
// inductive, deeper-k inductive, and falsified properties.
func kindModels() []struct {
	name  string
	build func() *circuit.Circuit
	maxK  int
} {
	return []struct {
		name  string
		build func() *circuit.Circuit
		maxK  int
	}{
		{"twin", func() *circuit.Circuit { return bench.Twin(8, 0, 0) }, 4},
		{"gcnt", func() *circuit.Circuit { return bench.GatedCounter(4, 10, 0, 0) }, 6},
		{"gcnt_offset", func() *circuit.Circuit { return offsetCounter() }, 16},
		{"tlc_bug", func() *circuit.Circuit { return bench.TrafficLight(true, 0, 0) }, 4},
		{"pipe_s5_bug", func() *circuit.Circuit { return bench.Pipeline(5, 8, true) }, 8},
	}
}

// TestWarmInductionMatchesSequentialAndPortfolio is the acceptance bar for
// the warm k-induction engine: ProvePortfolioIncremental (with and
// without the clause bus) must report the same status and depth as Prove
// and ProvePortfolio on every suite regime.
func TestWarmInductionMatchesSequentialAndPortfolio(t *testing.T) {
	for _, m := range kindModels() {
		opts := Options{
			MaxK:     m.maxK,
			Strategy: core.OrderVSIDS,
			Solver:   sat.Defaults(),
			Deadline: time.Now().Add(60 * time.Second),
		}
		seq, err := Prove(m.build(), 0, opts)
		if err != nil {
			t.Fatalf("%s sequential: %v", m.name, err)
		}
		cold, err := ProvePortfolio(m.build(), 0, PortfolioOptions{Options: opts})
		if err != nil {
			t.Fatalf("%s cold portfolio: %v", m.name, err)
		}
		if cold.Status != seq.Status || cold.K != seq.K {
			t.Fatalf("%s: cold portfolio %v@%d vs sequential %v@%d",
				m.name, cold.Status, cold.K, seq.Status, seq.K)
		}
		for _, share := range []bool{false, true} {
			warm, err := ProvePortfolioIncremental(m.build(), 0, PortfolioOptions{
				Options:  opts,
				Exchange: racer.ExchangeOptions{Enabled: share},
				// Exercise the step pool's own (default-off) bus too.
				StepExchange: racer.ExchangeOptions{Enabled: share},
			})
			if err != nil {
				t.Fatalf("%s warm share=%v: %v", m.name, share, err)
			}
			if !warm.Warm {
				t.Fatalf("%s: Warm flag not set", m.name)
			}
			if warm.Status != seq.Status || warm.K != seq.K {
				t.Fatalf("%s share=%v: warm %v@%d vs sequential %v@%d",
					m.name, share, warm.Status, warm.K, seq.Status, seq.K)
			}
			if warm.Status == Falsified && warm.Trace == nil {
				t.Fatalf("%s share=%v: falsified without trace", m.name, share)
			}
			// Every completed depth raced the base query; the step races
			// split between observed and aborted ones.
			baseDepths := len(warm.BaseTelemetry.Depths)
			if baseDepths == 0 {
				t.Fatalf("%s share=%v: no base races observed", m.name, share)
			}
			if got := len(warm.StepTelemetry.Depths) + warm.StepTelemetry.AbortedRaces; got != baseDepths {
				t.Fatalf("%s share=%v: %d step races (observed+aborted), want %d",
					m.name, share, got, baseDepths)
			}
		}
	}
}

// TestWarmInductionTightBudgetMatches: under a 1-conflict budget every
// engine hits the wall at the first depth whose queries need real search
// — where all solvers are still equally cold, so the Unknown status and
// the reported K must agree exactly. (Looser budgets can legitimately
// diverge: a warm solver may decide within a budget that stops a cold
// one, which is the engine's whole point.)
func TestWarmInductionTightBudgetMatches(t *testing.T) {
	build := func() *circuit.Circuit { return bench.AdderTwin(4, 6, 16) }
	opts := Options{
		MaxK:                 4,
		Strategy:             core.OrderVSIDS,
		Solver:               sat.Defaults(),
		PerInstanceConflicts: 1,
	}
	seq, err := Prove(build(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ProvePortfolio(build(), 0, PortfolioOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ProvePortfolioIncremental(build(), 0, PortfolioOptions{
		Options:  opts,
		Exchange: racer.ExchangeOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Status != Unknown {
		t.Fatalf("sequential status %v under a 1-conflict budget, want unknown", seq.Status)
	}
	if cold.Status != seq.Status || cold.K != seq.K {
		t.Fatalf("cold portfolio %v@%d vs sequential %v@%d", cold.Status, cold.K, seq.Status, seq.K)
	}
	if warm.Status != seq.Status || warm.K != seq.K {
		t.Fatalf("warm %v@%d vs sequential %v@%d", warm.Status, warm.K, seq.Status, seq.K)
	}
}

// TestPortfolioDeadlineReportsLastAttemptedDepth is the regression test
// for the off-by-one: a deadline that expires before any depth is
// attempted must report K = -1 (no depth ran), not K = 0.
func TestPortfolioDeadlineReportsLastAttemptedDepth(t *testing.T) {
	expired := time.Now().Add(-time.Second)
	opts := Options{MaxK: 8, Solver: sat.Defaults(), Deadline: expired}

	seq, err := Prove(bench.Twin(8, 0, 0), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ProvePortfolio(bench.Twin(8, 0, 0), 0, PortfolioOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ProvePortfolioIncremental(bench.Twin(8, 0, 0), 0, PortfolioOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"sequential": seq, "cold": &cold.Result, "warm": &warm.Result} {
		if res.Status != Unknown {
			t.Fatalf("%s: status %v with an expired deadline, want unknown", name, res.Status)
		}
		if res.K != -1 {
			t.Fatalf("%s: K = %d with an expired deadline, want -1 (no depth ran)", name, res.K)
		}
	}
	if got := len(cold.BaseTelemetry.Depths); got != 0 {
		t.Fatalf("cold: %d base races observed under an expired deadline", got)
	}
}

// TestPortfolioAbortedStepRacesNotCountedAsLosses is the regression test
// for the cancellation skew: the step race of a depth whose base case is
// SAT (or undecided) is cancelled deliberately, and must land in
// AbortedRaces — not in the per-strategy loss columns or the depth log.
func TestPortfolioAbortedStepRacesNotCountedAsLosses(t *testing.T) {
	check := func(name string, res *PortfolioResult) {
		t.Helper()
		if res.Status != Falsified {
			t.Fatalf("%s: status %v, want falsified", name, res.Status)
		}
		if res.StepTelemetry.AbortedRaces == 0 {
			t.Fatalf("%s: the falsifying depth's step race was not recorded as aborted", name)
		}
		// The aborted race must not appear in the depth log...
		base, step := len(res.BaseTelemetry.Depths), len(res.StepTelemetry.Depths)
		if step+res.StepTelemetry.AbortedRaces != base {
			t.Fatalf("%s: %d observed + %d aborted step races, want %d (base depths)",
				name, step, res.StepTelemetry.AbortedRaces, base)
		}
		// ...and must not have charged conflicts to any strategy's account.
		var observed int64
		for _, dw := range res.StepTelemetry.Depths {
			observed += dw.WinnerConflicts + dw.LoserConflicts
		}
		var spent int64
		for _, n := range res.StepTelemetry.ConflictsSpent {
			spent += n
		}
		if spent != observed {
			t.Fatalf("%s: ConflictsSpent %d != observed-race conflicts %d (aborted races leaked in)",
				name, spent, observed)
		}
	}

	cold, err := ProvePortfolio(bench.TrafficLight(true, 0, 0), 0, PortfolioOptions{
		Options: Options{MaxK: 4, Solver: sat.Defaults(), Deadline: time.Now().Add(30 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	check("cold", cold)

	warm, err := ProvePortfolioIncremental(bench.TrafficLight(true, 0, 0), 0, PortfolioOptions{
		Options:  Options{MaxK: 4, Solver: sat.Defaults(), Deadline: time.Now().Add(30 * time.Second)},
		Exchange: racer.ExchangeOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	check("warm", warm)
}

// TestWarmInductionTimeaxisOnly: the step pool's time-axis guidance must
// classify every step-delta variable (auxiliaries unscored) without
// panicking, and still prove the deeper-k model.
func TestWarmInductionTimeaxisOnly(t *testing.T) {
	res, err := ProvePortfolioIncremental(bench.GatedCounter(4, 10, 0, 0), 0, PortfolioOptions{
		Options: Options{
			MaxK:     6,
			Solver:   sat.Defaults(),
			Deadline: time.Now().Add(30 * time.Second),
		},
		Strategies: portfolio.StrategySet{core.OrderTimeAxis, core.OrderVSIDS},
		Jobs:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Proved {
		t.Fatalf("status %v, want proved", res.Status)
	}
}

// TestStepFormulaHonorsPropertyIndex is the regression test for the
// hardcoded property 0: with a 0-inductive property 0 and a genuinely
// reachable property 1, an engine that builds step instances for the
// wrong property would return an unsound Proved@0 for property 1 (base
// UNSAT at k=0, wrong-step UNSAT at k=0). Every engine must falsify
// property 1 at its real counter-example depth instead.
func TestStepFormulaHonorsPropertyIndex(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New("two_props")
		en := c.Input("en")
		w := c.LatchWord("cnt", 4, 0)
		inc, _ := c.IncWord(w)
		wrap := c.EqConst(w, 9)
		bump := c.MuxWord(wrap, c.ConstWord(4, 0), inc)
		c.SetNextWord(w, c.MuxWord(en, bump, w))
		// Property 0: the wrap gap value 10 is unreachable AND 0-inductive
		// (10 has no predecessor: 9 wraps to 0, 10 keeps itself only if
		// already there). Property 1: value 5 is plainly reachable.
		c.AddProperty("unreachable", c.EqConst(w, 10))
		c.AddProperty("reachable", c.EqConst(w, 5))
		return c
	}
	opts := Options{MaxK: 8, Solver: sat.Defaults(), Deadline: time.Now().Add(30 * time.Second)}

	seq, err := Prove(build(), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Status != Falsified || seq.K != 5 {
		t.Fatalf("sequential: %v@%d for the reachable property, want falsified@5", seq.Status, seq.K)
	}
	cold, err := ProvePortfolio(build(), 1, PortfolioOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ProvePortfolioIncremental(build(), 1, PortfolioOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"cold": &cold.Result, "warm": &warm.Result} {
		if res.Status != Falsified || res.K != 5 {
			t.Fatalf("%s: %v@%d for the reachable property, want falsified@5", name, res.Status, res.K)
		}
	}
	// Property 0 must still prove immediately.
	p0, err := Prove(build(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Status != Proved {
		t.Fatalf("property 0: %v, want proved", p0.Status)
	}
}
